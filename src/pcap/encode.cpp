#include "pcap/encode.hpp"

#include "pcap/checksum.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace tdat {

std::vector<std::uint8_t> encode_tcp_frame(const TcpSegmentSpec& spec) {
  // TCP options (SYN segments): MSS and window scale, NOP-padded to 4 bytes.
  ByteWriter opts;
  if (spec.mss) {
    opts.u8(2);
    opts.u8(4);
    opts.u16be(*spec.mss);
  }
  if (spec.window_scale) {
    opts.u8(3);
    opts.u8(3);
    opts.u8(*spec.window_scale);
    opts.u8(1);  // NOP pad to 32-bit boundary
  }
  if (spec.ts_val) {
    opts.u8(1);  // NOP
    opts.u8(1);  // NOP (the conventional NOP-NOP-TS alignment)
    opts.u8(8);
    opts.u8(10);
    opts.u32be(*spec.ts_val);
    opts.u32be(spec.ts_ecr);
  }
  TDAT_ENSURES(opts.size() % 4 == 0);

  const std::size_t tcp_header_len = 20 + opts.size();
  const std::size_t tcp_total = tcp_header_len + spec.payload.size();
  const std::size_t ip_total = 20 + tcp_total;
  TDAT_EXPECTS(ip_total <= 0xffff);

  // TCP segment with zero checksum, then patch.
  ByteWriter tcp;
  tcp.u16be(spec.src_port);
  tcp.u16be(spec.dst_port);
  tcp.u32be(spec.seq);
  tcp.u32be(spec.ack);
  tcp.u8(static_cast<std::uint8_t>((tcp_header_len / 4) << 4));
  std::uint8_t flags = 0;
  if (spec.flags.fin) flags |= 0x01;
  if (spec.flags.syn) flags |= 0x02;
  if (spec.flags.rst) flags |= 0x04;
  if (spec.flags.psh) flags |= 0x08;
  if (spec.flags.ack) flags |= 0x10;
  if (spec.flags.urg) flags |= 0x20;
  tcp.u8(flags);
  tcp.u16be(spec.window);
  const std::size_t checksum_at = tcp.size();
  tcp.u16be(0);
  tcp.u16be(0);  // urgent pointer
  tcp.bytes(opts.data());
  tcp.bytes(spec.payload);
  tcp.patch_u16be(checksum_at,
                  tcp_checksum(spec.src_ip, spec.dst_ip, tcp.data()));

  // IPv4 header with zero checksum, then patch.
  ByteWriter ip;
  ip.u8(0x45);  // version 4, IHL 5
  ip.u8(0);
  ip.u16be(static_cast<std::uint16_t>(ip_total));
  ip.u16be(spec.ip_ident);
  ip.u16be(0x4000);  // don't fragment
  ip.u8(64);         // TTL
  ip.u8(kIpProtoTcp);
  const std::size_t ip_checksum_at = ip.size();
  ip.u16be(0);
  ip.u32be(spec.src_ip);
  ip.u32be(spec.dst_ip);
  ip.patch_u16be(ip_checksum_at, internet_checksum(ip.data()));

  // Ethernet II frame. MACs are synthetic constants.
  ByteWriter frame;
  const std::uint8_t dst_mac[6] = {0x02, 0, 0, 0, 0, 0x02};
  const std::uint8_t src_mac[6] = {0x02, 0, 0, 0, 0, 0x01};
  frame.bytes(dst_mac);
  frame.bytes(src_mac);
  frame.u16be(kEtherTypeIpv4);
  frame.bytes(ip.data());
  frame.bytes(tcp.data());
  return frame.take();
}

}  // namespace tdat
