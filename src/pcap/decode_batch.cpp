#include "pcap/decode_batch.hpp"

#include <algorithm>
#include <bit>

#include "pcap/checksum.hpp"
#include "pcap/decode.hpp"
#include "util/bytes.hpp"

namespace tdat {
namespace {

constexpr std::size_t kEth = 14;

std::uint16_t be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

std::uint32_t be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | p[3];
}

}  // namespace

std::size_t decode_records(std::span<const StreamRecord> records,
                           std::size_t start_index, bool verify_checksums,
                           DecodeScratch& scratch,
                           std::vector<DecodedPacket>& out) {
  const std::size_t n = std::min(records.size(), kDecodeBatch);
  std::uint64_t mask = 0;

  // Pass 1 — fixed-field extraction with a folded validity mask. The reject
  // conditions mirror decode_frame's early returns exactly (see the header
  // contract); they are just accumulated into `v` instead of branched on,
  // leaving three predictable branches per lane: the two bounds guards the
  // loads need, and the store of a surviving lane.
  for (std::size_t i = 0; i < n; ++i) {
    const StreamRecord& rec = records[i];
    const std::uint8_t* p = rec.data.data();
    const std::size_t len = rec.data.size();

    // Truncated-capture skip plus the minimum Eth + IPv4 + TCP footprint; a
    // shorter frame cannot decode (the scalar path rejects it via reader
    // exhaustion) and its loads below would be out of bounds.
    if (len < rec.orig_len || len < kEth + 20 + 20) continue;

    const std::uint8_t ver_ihl = p[kEth];
    const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
    bool v = be16(p + 12) == kEtherTypeIpv4;
    v &= (ver_ihl >> 4) == 4;
    v &= ihl >= 20;
    const std::uint16_t total_len = be16(p + kEth + 2);
    v &= p[kEth + 9] == kIpProtoTcp;
    v &= total_len >= ihl;
    v &= kEth + total_len <= len;
    const std::size_t tcp_off = kEth + ihl;
    v &= tcp_off + 20 <= len;  // bounds for the TCP loads below
    if (!v) continue;

    const std::uint8_t* t = p + tcp_off;
    const std::size_t doff = static_cast<std::size_t>(t[12] >> 4) * 4;
    v = doff >= 20;
    v &= total_len >= ihl + doff;
    if (!v) continue;

    scratch.ihl[i] = static_cast<std::uint8_t>(ihl);
    scratch.ttl[i] = p[kEth + 8];
    scratch.total_len[i] = total_len;
    scratch.ident[i] = be16(p + kEth + 4);
    scratch.src[i] = be32(p + kEth + 12);
    scratch.dst[i] = be32(p + kEth + 16);
    scratch.sport[i] = be16(t);
    scratch.dport[i] = be16(t + 2);
    scratch.seq[i] = be32(t + 4);
    scratch.ack[i] = be32(t + 8);
    scratch.doff[i] = static_cast<std::uint8_t>(doff);
    scratch.flags[i] = t[13];
    scratch.window[i] = be16(t + 14);
    mask |= std::uint64_t{1} << i;
  }

  // Pass 2 — materialize the survivors, lane order preserved (clearing the
  // lowest set bit walks the mask in increasing lane order). Variable-rate
  // work lives here: TCP options and checksum verification can still reject
  // a lane, exactly as decode_frame would.
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const auto i = static_cast<std::size_t>(std::countr_zero(m));
    const StreamRecord& rec = records[i];
    const std::span<const std::uint8_t> frame = rec.data;
    const std::size_t ihl = scratch.ihl[i];
    const std::size_t doff = scratch.doff[i];

    DecodedPacket pkt;
    pkt.ts = rec.ts;
    pkt.index = start_index + i;
    pkt.ip.src = scratch.src[i];
    pkt.ip.dst = scratch.dst[i];
    pkt.ip.protocol = kIpProtoTcp;
    pkt.ip.ttl = scratch.ttl[i];
    pkt.ip.ident = scratch.ident[i];
    pkt.ip.total_length = scratch.total_len[i];
    pkt.ip.header_len = ihl;
    pkt.tcp.src_port = scratch.sport[i];
    pkt.tcp.dst_port = scratch.dport[i];
    pkt.tcp.seq = scratch.seq[i];
    pkt.tcp.ack = scratch.ack[i];
    pkt.tcp.window = scratch.window[i];
    pkt.tcp.header_len = doff;
    const std::uint8_t flags = scratch.flags[i];
    pkt.tcp.flags.fin = flags & 0x01;
    pkt.tcp.flags.syn = flags & 0x02;
    pkt.tcp.flags.rst = flags & 0x04;
    pkt.tcp.flags.psh = flags & 0x08;
    pkt.tcp.flags.ack = flags & 0x10;
    pkt.tcp.flags.urg = flags & 0x20;

    if (doff > 20) {
      // Options are fully inside the frame: the mask already enforced
      // 14 + total_length <= len and total_length >= ihl + doff.
      const std::uint8_t* opt = frame.data() + kEth + ihl + 20;
      const std::size_t opt_len = doff - 20;
      if (opt_len == 12 && opt[0] == 1 && opt[1] == 1 && opt[2] == 8 &&
          opt[3] == 10) {
        // NOP NOP Timestamps — the layout on essentially every post-SYN
        // segment of a timestamp-negotiated session.
        pkt.tcp.ts_val = be32(opt + 4);
        pkt.tcp.ts_ecr = be32(opt + 8);
      } else {
        ByteReader r(frame);
        r.skip(kEth + ihl + 20);
        if (!detail::decode_tcp_options(r, opt_len, pkt.tcp) || !r.ok()) {
          continue;  // malformed option list, same reject as the scalar path
        }
      }
    }

    const std::size_t tcp_total = pkt.ip.total_length - ihl;
    if (verify_checksums) {
      if (internet_checksum(frame.subspan(kEth, ihl)) != 0) continue;
      if (tcp_checksum(pkt.ip.src, pkt.ip.dst,
                       frame.subspan(kEth + ihl, tcp_total)) != 0) {
        continue;
      }
    }

    pkt.payload_offset = kEth + ihl + doff;
    pkt.payload_len = tcp_total - doff;
    if (rec.arena) {
      pkt.frame = frame;
      pkt.backing = rec.arena;
    } else {
      auto copy = std::make_shared<std::vector<std::uint8_t>>(frame.begin(),
                                                              frame.end());
      pkt.frame = std::span<const std::uint8_t>(*copy);
      pkt.backing = std::move(copy);
    }
    out.push_back(std::move(pkt));
  }
  return n;
}

}  // namespace tdat
