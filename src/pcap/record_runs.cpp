#include "pcap/record_runs.hpp"

#include <utility>

namespace tdat {

namespace {

// The magic is defined as read little-endian; same table as PcapStream.
constexpr std::uint32_t kMagicMicrosLE = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanosLE = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicrosBE = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosBE = 0x4d3cb2a1;

constexpr std::size_t kGlobalHeaderLen = 24;
constexpr std::size_t kRecordHeaderLen = 16;

std::uint32_t read_u32(const std::uint8_t* p, bool swapped) {
  return swapped ? static_cast<std::uint32_t>(p[0]) << 24 |
                       static_cast<std::uint32_t>(p[1]) << 16 |
                       static_cast<std::uint32_t>(p[2]) << 8 | p[3]
                 : static_cast<std::uint32_t>(p[3]) << 24 |
                       static_cast<std::uint32_t>(p[2]) << 16 |
                       static_cast<std::uint32_t>(p[1]) << 8 | p[0];
}

}  // namespace

Result<PcapImageHeader> parse_pcap_image_header(
    std::span<const std::uint8_t> image) {
  if (image.size() < kGlobalHeaderLen) {
    return Err<PcapImageHeader>("pcap: truncated global header");
  }
  PcapImageHeader h;
  const std::uint32_t magic = static_cast<std::uint32_t>(image[0]) |
                              static_cast<std::uint32_t>(image[1]) << 8 |
                              static_cast<std::uint32_t>(image[2]) << 16 |
                              static_cast<std::uint32_t>(image[3]) << 24;
  switch (magic) {
    case kMagicMicrosLE: break;
    case kMagicNanosLE: h.nanos = true; break;
    case kMagicMicrosBE: h.swapped = true; break;
    case kMagicNanosBE: h.swapped = true; h.nanos = true; break;
    default: return Err<PcapImageHeader>("pcap: bad magic number");
  }
  h.snaplen = read_u32(image.data() + 16, h.swapped);
  return h;
}

Result<RecordRunReader> RecordRunReader::open(
    std::shared_ptr<const void> pin, std::span<const std::uint8_t> image,
    std::vector<RecordRun> runs) {
  TDAT_TRY(header, parse_pcap_image_header(image));
  RecordRunReader r;
  r.pin_ = std::move(pin);
  r.image_ = image;
  r.header_ = header;
  r.runs_ = std::move(runs);
  if (!r.runs_.empty()) {
    r.offset_ = r.runs_.front().offset;
    r.left_ = r.runs_.front().count;
  }
  return r;
}

std::uint32_t RecordRunReader::u32_at(std::size_t at) const {
  return read_u32(image_.data() + at, header_.swapped);
}

bool RecordRunReader::next(StreamRecord& out) {
  if (failed()) return false;
  // Skip exhausted (and empty) runs.
  while (left_ == 0) {
    if (++run_ >= runs_.size()) return false;
    offset_ = runs_[run_].offset;
    left_ = runs_[run_].count;
  }
  if (offset_ < kGlobalHeaderLen ||
      offset_ + kRecordHeaderLen > image_.size()) {
    error_ = "shard plan: record header at offset " + std::to_string(offset_) +
             " is outside the capture image";
    return false;
  }
  const std::uint32_t ts_sec = u32_at(offset_);
  const std::uint32_t ts_frac = u32_at(offset_ + 4);
  const std::uint32_t incl_len = u32_at(offset_ + 8);
  const std::uint32_t orig_len = u32_at(offset_ + 12);
  // The same sanity gates PcapStream applies before serving a record: a plan
  // built from this image can only trip them if the file changed underneath.
  if (incl_len == 0 || incl_len > header_.effective_snaplen() ||
      ts_frac >= (header_.nanos ? 1000000000u : 1000000u) ||
      offset_ + kRecordHeaderLen + incl_len > image_.size()) {
    error_ = "shard plan: implausible record at offset " +
             std::to_string(offset_) + " (capture changed since planning?)";
    return false;
  }
  out.ts = static_cast<Micros>(ts_sec) * kMicrosPerSec +
           (header_.nanos ? ts_frac / 1000 : ts_frac);
  out.orig_len = orig_len;
  out.data = image_.subspan(offset_ + kRecordHeaderLen, incl_len);
  out.arena = pin_;
  out.file_offset = offset_;
  offset_ += kRecordHeaderLen + incl_len;
  --left_;
  bytes_read_ += kRecordHeaderLen + incl_len;
  ++records_read_;
  return true;
}

}  // namespace tdat
