#include "pcap/pcap_stream.hpp"

#include <cstring>

#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

constexpr std::uint32_t kMagicMicrosLE = 0xa1b2c3d4;  // as read little-endian
constexpr std::uint32_t kMagicMicrosBE = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosLE = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanosBE = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kGlobalHeaderLen = 24;
constexpr std::size_t kRecordHeaderLen = 16;

}  // namespace

Result<PcapStream> PcapStream::open(const std::string& path,
                                    std::size_t chunk_size) {
  PcapStream s;
  s.file_.reset(std::fopen(path.c_str(), "rb"));
  if (!s.file_) return Err<PcapStream>("pcap: cannot open " + path);
  s.chunk_size_ = chunk_size > kRecordHeaderLen ? chunk_size : kDefaultChunkSize;
  return init(std::move(s));
}

Result<PcapStream> PcapStream::from_memory(std::span<const std::uint8_t> image,
                                           std::size_t chunk_size) {
  PcapStream s;
  s.mem_ = image;
  // Tiny chunk sizes are allowed here so tests can force records to straddle
  // chunk boundaries.
  s.chunk_size_ = chunk_size >= kGlobalHeaderLen ? chunk_size : kGlobalHeaderLen;
  return init(std::move(s));
}

Result<PcapStream> PcapStream::init(PcapStream s) {
  MetricsRegistry& reg = metrics();
  s.m_records_ = &reg.counter("pcap.records");
  s.m_bytes_ = &reg.counter("pcap.bytes");
  s.m_chunks_ = &reg.counter("pcap.chunk_refills");
  s.m_recycles_ = &reg.counter("pcap.arena_recycles");
  s.m_allocs_ = &reg.counter("pcap.arena_allocs");
  s.m_straddles_ = &reg.counter("pcap.straddle_relocations");
  s.m_refill_us_ = &reg.histogram("pcap.refill_us");
  if (!s.refill(4)) return Err<PcapStream>("pcap: file shorter than global header");
  // The magic is defined as read little-endian; it decides the order of
  // every later field.
  const std::uint32_t magic = static_cast<std::uint32_t>(s.arena_->at(s.pos_)) |
                              static_cast<std::uint32_t>(s.arena_->at(s.pos_ + 1)) << 8 |
                              static_cast<std::uint32_t>(s.arena_->at(s.pos_ + 2)) << 16 |
                              static_cast<std::uint32_t>(s.arena_->at(s.pos_ + 3)) << 24;
  s.pos_ += 4;
  switch (magic) {
    case kMagicMicrosLE: break;
    case kMagicNanosLE: s.nanos_ = true; break;
    case kMagicMicrosBE: s.swapped_ = true; break;
    case kMagicNanosBE: s.swapped_ = true; s.nanos_ = true; break;
    default: return Err<PcapStream>("pcap: bad magic number");
  }
  if (!s.refill(kGlobalHeaderLen - 4)) {
    return Err<PcapStream>("pcap: truncated global header");
  }
  const std::uint16_t major = s.u16();
  (void)s.u16();  // minor version
  (void)s.u32();  // thiszone
  (void)s.u32();  // sigfigs
  s.snaplen_ = s.u32();
  const std::uint32_t linktype = s.u32();
  if (major != 2) return Err<PcapStream>("pcap: unsupported version");
  if (linktype != kLinkTypeEthernet) {
    return Err<PcapStream>("pcap: unsupported link type " + std::to_string(linktype));
  }
  s.bytes_read_ = kGlobalHeaderLen;
  return s;
}

std::size_t PcapStream::read_source(std::uint8_t* dst, std::size_t n) {
  if (file_) return std::fread(dst, 1, n, file_.get());
  const std::size_t got = std::min(n, mem_.size() - mem_pos_);
  std::memcpy(dst, mem_.data() + mem_pos_, got);
  mem_pos_ += got;
  return got;
}

bool PcapStream::refill(std::size_t n) {
  if (arena_ && fill_ - pos_ >= n) return true;
  TDAT_TRACE_SPAN("pcap.refill", "pcap");
  const std::int64_t t0 = monotonic_micros();
  const std::size_t tail = arena_ ? fill_ - pos_ : 0;
  const std::size_t want = std::max(chunk_size_, n);

  // A fresh arena is required even when the current one has spare capacity:
  // bytes already handed out as record views must never move. The previous
  // chunk is kept as a recycling candidate and reused once nothing
  // references it any more — steady-state streaming therefore ping-pongs
  // between two buffers instead of allocating per chunk.
  std::shared_ptr<Arena> next;
  if (spare_ && spare_.use_count() == 1 && spare_->size() >= want) {
    next = std::move(spare_);
    m_recycles_->inc();
  } else {
    next = std::make_shared<Arena>(want);
    m_allocs_->inc();
  }
  if (tail > 0) {
    std::memcpy(next->data(), arena_->data() + pos_, tail);
    m_straddles_->inc();
  }
  spare_ = std::move(arena_);
  arena_ = std::move(next);
  pos_ = 0;
  fill_ = tail + read_source(arena_->data() + tail, arena_->size() - tail);
  m_chunks_->inc();
  m_refill_us_->observe(monotonic_micros() - t0);
  return fill_ >= n;
}

std::uint16_t PcapStream::u16() {
  const std::uint8_t* p = arena_->data() + pos_;
  pos_ += 2;
  return swapped_ ? static_cast<std::uint16_t>(p[0] << 8 | p[1])
                  : static_cast<std::uint16_t>(p[1] << 8 | p[0]);
}

std::uint32_t PcapStream::u32() {
  const std::uint8_t* p = arena_->data() + pos_;
  pos_ += 4;
  return swapped_ ? static_cast<std::uint32_t>(p[0]) << 24 |
                        static_cast<std::uint32_t>(p[1]) << 16 |
                        static_cast<std::uint32_t>(p[2]) << 8 | p[3]
                  : static_cast<std::uint32_t>(p[3]) << 24 |
                        static_cast<std::uint32_t>(p[2]) << 16 |
                        static_cast<std::uint32_t>(p[1]) << 8 | p[0];
}

bool PcapStream::next(StreamRecord& out) {
  if (done_) return false;
  if (!refill(kRecordHeaderLen)) {
    done_ = true;
    return false;
  }
  const std::uint32_t ts_sec = u32();
  const std::uint32_t ts_frac = u32();
  const std::uint32_t incl_len = u32();
  const std::uint32_t orig_len = u32();
  // Same corrupt-tail policy as parse_pcap: an implausible length or a body
  // the source cannot supply drops the record and everything after it.
  if (incl_len > snaplen_ + 65535 || !refill(incl_len)) {
    TDAT_LOG_WARN("pcap: corrupt or truncated record after %llu records "
                  "(%llu bytes); dropping tail",
                  static_cast<unsigned long long>(records_read_),
                  static_cast<unsigned long long>(bytes_read_));
    done_ = true;
    return false;
  }
  out.ts = static_cast<Micros>(ts_sec) * kMicrosPerSec +
           (nanos_ ? ts_frac / 1000 : ts_frac);
  out.orig_len = orig_len;
  out.data = std::span<const std::uint8_t>(arena_->data() + pos_, incl_len);
  out.arena = arena_;
  pos_ += incl_len;
  bytes_read_ += kRecordHeaderLen + incl_len;
  ++records_read_;
  m_records_->inc();
  m_bytes_->inc(kRecordHeaderLen + incl_len);
  return true;
}

PcapFile PcapStream::drain_to_file() {
  PcapFile out;
  out.nanosecond = nanos_;
  out.snaplen = snaplen_;
  // Heuristic capacity from the source size: BGP monitoring traces mix
  // ~70-byte pure ACKs with MSS-sized data segments, so ~100 bytes per
  // record on top of the 16-byte header keeps reallocation rare without
  // over-reserving on data-heavy captures.
  std::uint64_t source_size = 0;
  if (file_) {
    const long at = std::ftell(file_.get());
    if (at >= 0 && std::fseek(file_.get(), 0, SEEK_END) == 0) {
      const long end = std::ftell(file_.get());
      if (end > at) source_size = static_cast<std::uint64_t>(end - at);
      std::fseek(file_.get(), at, SEEK_SET);
    }
  } else {
    source_size = mem_.size() - mem_pos_;
  }
  source_size += fill_ - pos_;
  out.records.reserve(source_size / (kRecordHeaderLen + 100) + 1);

  StreamRecord rec;
  while (next(rec)) {
    PcapRecord owned;
    owned.ts = rec.ts;
    owned.orig_len = rec.orig_len;
    owned.data.assign(rec.data.begin(), rec.data.end());
    out.records.push_back(std::move(owned));
  }
  return out;
}

}  // namespace tdat
