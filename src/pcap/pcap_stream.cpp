#include "pcap/pcap_stream.hpp"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

#include "pcap/mmap_file.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

constexpr std::uint32_t kMagicMicrosLE = 0xa1b2c3d4;  // as read little-endian
constexpr std::uint32_t kMagicMicrosBE = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosLE = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanosBE = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kGlobalHeaderLen = 24;
constexpr std::size_t kRecordHeaderLen = 16;

// Resync plausibility window around the last good timestamp: captures can
// step backwards a little (multi-queue NICs reorder slightly) but a record
// claiming to predate the stream by seconds or postdate it by more than a
// day is a misparse, not data.
constexpr Micros kResyncPastSlack = 2 * kMicrosPerSec;
constexpr Micros kResyncFutureSlack = Micros{24} * 3600 * kMicrosPerSec;
// orig_len cap for resync candidates: jumbo frames exist, 1 MiB frames don't.
constexpr std::uint32_t kResyncMaxOrigLen = 1u << 20;

std::uint32_t read_u32(const std::uint8_t* p, bool swapped) {
  return swapped ? static_cast<std::uint32_t>(p[0]) << 24 |
                       static_cast<std::uint32_t>(p[1]) << 16 |
                       static_cast<std::uint32_t>(p[2]) << 8 | p[3]
                 : static_cast<std::uint32_t>(p[3]) << 24 |
                       static_cast<std::uint32_t>(p[2]) << 16 |
                       static_cast<std::uint32_t>(p[1]) << 8 | p[0];
}

// Size of the regular file behind `f`, or SIZE_MAX when it has none (pipe,
// socket, special file). fstat never moves the read position and costs one
// syscall, unlike the historical seek-to-end/seek-back dance.
std::size_t file_size_of(std::FILE* f) {
#if defined(__unix__) || defined(__APPLE__)
  struct stat st;
  if (fstat(fileno(f), &st) == 0 && S_ISREG(st.st_mode) && st.st_size >= 0) {
    return static_cast<std::size_t>(st.st_size);
  }
  return SIZE_MAX;
#else
  if (std::fseek(f, 0, SEEK_END) != 0) return SIZE_MAX;
  const long end = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  return end >= 0 ? static_cast<std::size_t>(end) : SIZE_MAX;
#endif
}

}  // namespace

Result<PcapStream> PcapStream::open(const std::string& path,
                                    std::size_t chunk_size) {
  return open(path, IngestPolicy{}, chunk_size);
}

Result<PcapStream> PcapStream::open(const std::string& path,
                                    const IngestPolicy& policy,
                                    std::size_t chunk_size) {
  PcapStream s;
  s.file_.reset(std::fopen(path.c_str(), "rb"));
  if (!s.file_) return Err<PcapStream>("pcap: cannot open " + path);
  // Learn the file size up front so refill can bound arena allocations by
  // what the source can actually deliver (unseekable sources stay unbounded).
  s.file_remaining_ = file_size_of(s.file_.get());
  s.policy_ = policy;
  s.chunk_size_ = chunk_size > kRecordHeaderLen ? chunk_size : kDefaultChunkSize;
  return init(std::move(s));
}

Result<PcapStream> PcapStream::from_memory(std::span<const std::uint8_t> image,
                                           std::size_t chunk_size) {
  return from_memory(image, IngestPolicy{}, chunk_size);
}

Result<PcapStream> PcapStream::from_memory(std::span<const std::uint8_t> image,
                                           const IngestPolicy& policy,
                                           std::size_t chunk_size) {
  PcapStream s;
  s.mem_ = image;
  s.policy_ = policy;
  // Tiny chunk sizes are allowed here so tests can force records to straddle
  // chunk boundaries.
  s.chunk_size_ = chunk_size >= kGlobalHeaderLen ? chunk_size : kGlobalHeaderLen;
  return init(std::move(s));
}

Result<PcapStream> PcapStream::from_image(std::shared_ptr<const void> pin,
                                          std::span<const std::uint8_t> image,
                                          const IngestPolicy& policy) {
  PcapStream s;
  s.mem_ = image;
  s.pin_ = std::move(pin);
  s.pinned_ = true;
  s.fill_ = image.size();  // the whole capture is "refilled" up front
  s.policy_ = policy;
  return init(std::move(s));
}

Result<PcapStream> PcapStream::from_feed(std::shared_ptr<ByteFeed> feed,
                                         const IngestPolicy& policy,
                                         std::size_t chunk_size) {
  PcapStream s;
  s.feed_ = std::move(feed);
  s.policy_ = policy;
  s.chunk_size_ = chunk_size >= kGlobalHeaderLen ? chunk_size : kGlobalHeaderLen;
  s.tail_ = true;
  return init(std::move(s));
}

Result<PcapStream> PcapStream::open_resumed(const std::string& path,
                                            const IngestPolicy& policy,
                                            const Resume& resume,
                                            std::size_t chunk_size) {
  if (resume.offset < kGlobalHeaderLen) {
    return Err<PcapStream>("pcap: resume offset inside global header");
  }
  auto opened = open(path, policy, chunk_size);
  if (!opened.ok()) return opened;
  PcapStream s = std::move(opened).value();
  // init() validated the global header and learned swapped_/nanos_/snaplen_
  // from the file itself; now jump to the checkpointed position and discard
  // the buffered prefix so the next refill starts clean at that byte.
  const std::size_t size = file_size_of(s.file_.get());
  if (size != SIZE_MAX && resume.offset > size) {
    return Err<PcapStream>("pcap: resume offset beyond end of " + path);
  }
  if (std::fseek(s.file_.get(), static_cast<long>(resume.offset), SEEK_SET) !=
      0) {
    return Err<PcapStream>("pcap: cannot seek to resume offset in " + path);
  }
  s.arena_.reset();
  s.spare_.reset();
  s.pos_ = 0;
  s.fill_ = 0;
  s.file_consumed_ = resume.offset;
  s.file_remaining_ =
      size == SIZE_MAX ? SIZE_MAX
                       : static_cast<std::size_t>(size - resume.offset);
  s.bytes_read_ = resume.offset;
  s.records_read_ = resume.records;
  s.last_ts_ = resume.last_ts;
  s.diag_ = resume.diag;
  return s;
}

Result<PcapStream> PcapStream::open_auto(const std::string& path,
                                         const IngestPolicy& policy,
                                         std::size_t chunk_size) {
  if (policy.use_mmap) {
    auto mapped = MappedFile::map(path);
    if (mapped.ok()) {
      MappedFile& m = mapped.value();
      metrics().counter("pcap.mmap_files").inc();
      metrics().counter("pcap.mmap_bytes").inc(m.bytes().size());
      return from_image(m.share(), m.bytes(), policy);
    }
    // Not mappable (pipe, device, empty file): the streaming reader decides
    // whether it is readable at all, with its usual error messages.
  }
  return open(path, policy, chunk_size);
}

Result<PcapStream> PcapStream::init(PcapStream s) {
  MetricsRegistry& reg = metrics();
  s.m_records_ = &reg.counter("pcap.records");
  s.m_bytes_ = &reg.counter("pcap.bytes");
  s.m_chunks_ = &reg.counter("pcap.chunk_refills");
  s.m_recycles_ = &reg.counter("pcap.arena_recycles");
  s.m_allocs_ = &reg.counter("pcap.arena_allocs");
  s.m_straddles_ = &reg.counter("pcap.straddle_relocations");
  s.m_err_truncated_ = &reg.counter("ingest.errors.truncated");
  s.m_err_resynced_ = &reg.counter("ingest.errors.resynced");
  s.m_err_skipped_ = &reg.counter("ingest.errors.skipped");
  s.m_refill_us_ = &reg.histogram("pcap.refill_us");
  if (!s.refill(4)) return Err<PcapStream>("pcap: file shorter than global header");
  // The magic is defined as read little-endian; it decides the order of
  // every later field.
  const std::uint8_t* m = s.base() + s.pos_;
  const std::uint32_t magic = static_cast<std::uint32_t>(m[0]) |
                              static_cast<std::uint32_t>(m[1]) << 8 |
                              static_cast<std::uint32_t>(m[2]) << 16 |
                              static_cast<std::uint32_t>(m[3]) << 24;
  s.pos_ += 4;
  switch (magic) {
    case kMagicMicrosLE: break;
    case kMagicNanosLE: s.nanos_ = true; break;
    case kMagicMicrosBE: s.swapped_ = true; break;
    case kMagicNanosBE: s.swapped_ = true; s.nanos_ = true; break;
    default: return Err<PcapStream>("pcap: bad magic number");
  }
  if (!s.refill(kGlobalHeaderLen - 4)) {
    return Err<PcapStream>("pcap: truncated global header");
  }
  const std::uint16_t major = s.u16();
  (void)s.u16();  // minor version
  (void)s.u32();  // thiszone
  (void)s.u32();  // sigfigs
  s.snaplen_ = s.u32();
  const std::uint32_t linktype = s.u32();
  if (major != 2) return Err<PcapStream>("pcap: unsupported version");
  if (linktype != kLinkTypeEthernet) {
    return Err<PcapStream>("pcap: unsupported link type " + std::to_string(linktype));
  }
  s.bytes_read_ = kGlobalHeaderLen;
  return s;
}

std::size_t PcapStream::read_source(std::uint8_t* dst, std::size_t n) {
  if (file_) {
    const std::size_t got = std::fread(dst, 1, n, file_.get());
    if (file_remaining_ != SIZE_MAX) {
      file_remaining_ -= std::min(got, file_remaining_);
    }
    file_consumed_ += got;
    return got;
  }
  if (feed_) return feed_->read(dst, n);
  const std::size_t got = std::min(n, mem_.size() - mem_pos_);
  std::memcpy(dst, mem_.data() + mem_pos_, got);
  mem_pos_ += got;
  return got;
}

std::size_t PcapStream::source_remaining() const {
  if (pinned_) return 0;  // the image is consumed in place, nothing left to read
  if (file_) return file_remaining_;
  // An open feed's future size is unknowable; once closed, what is buffered
  // is all there will ever be.
  if (feed_) return feed_->closed() ? feed_->available() : SIZE_MAX;
  return mem_.size() - mem_pos_;
}

bool PcapStream::poll_growth() {
  if (!file_) return false;
#if defined(__unix__) || defined(__APPLE__)
  struct stat st;
  if (fstat(fileno(file_.get()), &st) != 0 || !S_ISREG(st.st_mode)) {
    return false;
  }
  const std::uint64_t size =
      st.st_size >= 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
  file_remaining_ = size > file_consumed_
                        ? static_cast<std::size_t>(size - file_consumed_)
                        : 0;
  if (file_remaining_ == 0) return false;
  // fread latches EOF the first time it hits the (then-)end of the file;
  // clear it so the next refill sees the appended bytes.
  std::clearerr(file_.get());
  return true;
#else
  return false;
#endif
}

bool PcapStream::refill(std::size_t n) {
  // Zero-copy mode: every byte is already in place; a "refill" is a bounds
  // check against the pinned image.
  if (pinned_) return fill_ - pos_ >= n;
  if (arena_ && fill_ - pos_ >= n) return true;
  // A drained source can never satisfy the request; in particular a hostile
  // record header may claim gigabytes the file does not contain — bound the
  // arena allocation below by what the source can still deliver instead of
  // trusting the claim.
  const std::size_t remaining = source_remaining();
  if (remaining == 0) return false;
  // An open feed that cannot satisfy the request yet: bail before touching
  // the arenas, so a tail-mode poll loop doesn't churn a relocation per poll.
  if (feed_ && !feed_->closed()) {
    const std::size_t tail_now = arena_ ? fill_ - pos_ : 0;
    if (tail_now + feed_->available() < n) return false;
  }
  TDAT_TRACE_SPAN("pcap.refill", "pcap");
  const std::int64_t t0 = monotonic_micros();
  const std::size_t tail = arena_ ? fill_ - pos_ : 0;
  std::size_t want = std::max(chunk_size_, n);
  if (remaining != SIZE_MAX && want > tail + remaining) {
    want = tail + remaining;
  }

  // A fresh arena is required even when the current one has spare capacity:
  // bytes already handed out as record views must never move. The previous
  // chunk is kept as a recycling candidate and reused once nothing
  // references it any more — steady-state streaming therefore ping-pongs
  // between two buffers instead of allocating per chunk.
  std::shared_ptr<Arena> next;
  if (spare_ && spare_.use_count() == 1 && spare_->size() >= want) {
    next = std::move(spare_);
    m_recycles_->inc();
  } else {
    next = std::make_shared<Arena>(want);
    m_allocs_->inc();
  }
  if (tail > 0) {
    std::memcpy(next->data(), arena_->data() + pos_, tail);
    m_straddles_->inc();
  }
  spare_ = std::move(arena_);
  arena_ = std::move(next);
  pos_ = 0;
  fill_ = tail + read_source(arena_->data() + tail, arena_->size() - tail);
  m_chunks_->inc();
  m_refill_us_->observe(monotonic_micros() - t0);
  return fill_ >= n;
}

std::uint16_t PcapStream::u16() {
  const std::uint8_t* p = base() + pos_;
  pos_ += 2;
  return swapped_ ? static_cast<std::uint16_t>(p[0] << 8 | p[1])
                  : static_cast<std::uint16_t>(p[1] << 8 | p[0]);
}

std::uint32_t PcapStream::u32() {
  const std::uint8_t* p = base() + pos_;
  pos_ += 4;
  return swapped_ ? static_cast<std::uint32_t>(p[0]) << 24 |
                        static_cast<std::uint32_t>(p[1]) << 16 |
                        static_cast<std::uint32_t>(p[2]) << 8 | p[3]
                  : static_cast<std::uint32_t>(p[3]) << 24 |
                        static_cast<std::uint32_t>(p[2]) << 16 |
                        static_cast<std::uint32_t>(p[1]) << 8 | p[0];
}

std::uint32_t PcapStream::effective_snaplen() const {
  // Some writers leave the snaplen field 0; treat that as the classic cap.
  return snaplen_ != 0 ? snaplen_ : 65535;
}

bool PcapStream::plausible_record_at(std::size_t at, Micros after) const {
  const std::uint8_t* p = base() + at;
  const std::uint32_t ts_sec = read_u32(p, swapped_);
  const std::uint32_t ts_frac = read_u32(p + 4, swapped_);
  const std::uint32_t incl = read_u32(p + 8, swapped_);
  const std::uint32_t orig = read_u32(p + 12, swapped_);
  if (incl == 0 || incl > effective_snaplen()) return false;
  if (orig < incl || orig > kResyncMaxOrigLen) return false;
  if (ts_frac >= (nanos_ ? 1000000000u : 1000000u)) return false;
  if (after >= 0) {
    const Micros ts = static_cast<Micros>(ts_sec) * kMicrosPerSec +
                      (nanos_ ? ts_frac / 1000 : ts_frac);
    if (ts + kResyncPastSlack < after || ts > after + kResyncFutureSlack) {
      return false;
    }
  }
  return true;
}

StreamStatus PcapStream::resync_step() {
  if (!resync_active_) {
    if (diag_.resynced >= policy_.max_errors) {
      diag_.budget_exhausted = true;
      TDAT_LOG_WARN("pcap: resync budget (%llu) exhausted after %llu records; "
                    "dropping tail",
                    static_cast<unsigned long long>(policy_.max_errors),
                    static_cast<unsigned long long>(records_read_));
      return StreamStatus::kEnd;
    }
    resync_active_ = true;
    resync_skipped_ = 1;  // the corrupt header's first byte
    ++pos_;
  }
  TDAT_TRACE_SPAN("pcap.resync", "pcap");
  // Slide a byte-granular window looking for the next header whose fields —
  // and, when the data is there, whose *successor's* fields — are plausible.
  // pos_ advances past every rejected byte, so refill never has to hold more
  // than a chunk of unvalidated tail and the scan is O(remaining bytes).
  // In tail mode every decision that would need bytes beyond the current end
  // of data pauses the scan (kNeedMore) instead of deciding early: a
  // candidate must be accepted or rejected on exactly the evidence the
  // batch reader would have, or live and batch replays would diverge.
  while (refill(kRecordHeaderLen)) {
    while (fill_ - pos_ >= kRecordHeaderLen) {
      if (plausible_record_at(pos_, last_ts_)) {
        const std::uint8_t* p = base() + pos_;
        const std::uint32_t ts_sec = read_u32(p, swapped_);
        const std::uint32_t ts_frac = read_u32(p + 4, swapped_);
        const std::uint32_t incl = read_u32(p + 8, swapped_);
        const Micros cand_ts = static_cast<Micros>(ts_sec) * kMicrosPerSec +
                               (nanos_ ? ts_frac / 1000 : ts_frac);
        // Chain check: the candidate's body must be present, and if another
        // header follows it, that one must be plausible too. A candidate
        // whose body runs past EOF is rejected but the scan continues — a
        // shorter real record may still start later in the remaining bytes.
        if (refill(kRecordHeaderLen + incl)) {
          // Each refill may relocate the tail to the front of a fresh arena
          // (resetting pos_), so the successor offset must be derived from
          // pos_ only after the last refill has run.
          const bool have_succ =
              refill(kRecordHeaderLen + incl + kRecordHeaderLen);
          if (!have_succ && tailing()) return StreamStatus::kNeedMore;
          const std::size_t succ = pos_ + kRecordHeaderLen + incl;
          if (!have_succ || plausible_record_at(succ, cand_ts)) {
            diag_.skipped_bytes += resync_skipped_;
            ++diag_.resynced;
            bytes_read_ += resync_skipped_;
            m_err_resynced_->inc();
            m_err_skipped_->inc(resync_skipped_);
            TDAT_LOG_WARN(
                "pcap: corrupt record header after %llu records; resynced "
                "after skipping %llu bytes",
                static_cast<unsigned long long>(records_read_),
                static_cast<unsigned long long>(resync_skipped_));
            resync_active_ = false;
            return StreamStatus::kOk;
          }
        } else if (tailing()) {
          // The candidate's body is not all here yet; it may be a real
          // record still being written. Pause at the candidate.
          return StreamStatus::kNeedMore;
        }
      }
      ++pos_;
      ++resync_skipped_;
    }
    if (tailing()) return StreamStatus::kNeedMore;
  }
  if (tailing()) return StreamStatus::kNeedMore;
  // Source exhausted without a plausible header: the remaining sub-header
  // bytes are garbage too.
  resync_skipped_ += fill_ - pos_;
  pos_ = fill_;
  diag_.skipped_bytes += resync_skipped_;
  bytes_read_ += resync_skipped_;
  m_err_skipped_->inc(resync_skipped_);
  TDAT_LOG_WARN("pcap: no plausible record found after corrupt header; "
                "dropped %llu trailing bytes",
                static_cast<unsigned long long>(resync_skipped_));
  resync_active_ = false;
  return StreamStatus::kEnd;
}

bool PcapStream::next(StreamRecord& out) {
  // Batch callers never tail, so kNeedMore cannot occur here.
  return next_live(out) == StreamStatus::kOk;
}

StreamStatus PcapStream::next_live(StreamRecord& out) {
  if (done_) return StreamStatus::kEnd;
  for (;;) {
    if (resync_active_) {
      const StreamStatus rs = resync_step();
      if (rs == StreamStatus::kNeedMore) return rs;
      if (rs == StreamStatus::kEnd) {
        done_ = true;
        return rs;
      }
      // kOk: pos_ sits on the recovered header; parse it below.
    }
    if (!pending_.have) {
      if (!refill(kRecordHeaderLen)) {
        if (tailing()) return StreamStatus::kNeedMore;
        if (fill_ - pos_ > 0) {
          // Partial record header at end of data.
          ++diag_.truncated;
          ++diag_.tail_truncated;
          m_err_truncated_->inc();
          TDAT_LOG_WARN("pcap: truncated record header after %llu records "
                        "(%llu bytes); dropping tail",
                        static_cast<unsigned long long>(records_read_),
                        static_cast<unsigned long long>(bytes_read_));
        }
        done_ = true;
        return StreamStatus::kEnd;
      }
      const std::size_t header_at = pos_;
      const std::uint32_t ts_sec = u32();
      const std::uint32_t ts_frac = u32();
      const std::uint32_t incl_len = u32();
      const std::uint32_t orig_len = u32();
      if (incl_len == 0 || incl_len > effective_snaplen()) {
        pos_ = header_at;
        if (policy_.strict) {
          // Interior corruption, not an end-of-data artifact: counts toward
          // truncated but not tail_truncated.
          ++diag_.truncated;
          m_err_truncated_->inc();
          TDAT_LOG_WARN("pcap: corrupt record header after %llu records "
                        "(%llu bytes); dropping tail (strict)",
                        static_cast<unsigned long long>(records_read_),
                        static_cast<unsigned long long>(bytes_read_));
          done_ = true;
          return StreamStatus::kEnd;
        }
        const StreamStatus rs = resync_step();
        if (rs == StreamStatus::kNeedMore) return rs;
        if (rs == StreamStatus::kEnd) {
          done_ = true;
          return rs;
        }
        continue;  // re-parse the recovered header
      }
      // Stash the parsed header before fetching the body: a tail-mode retry
      // cannot rewind to header_at because refill relocates only unconsumed
      // bytes — the 16 header bytes are gone from the arena.
      pending_.ts = static_cast<Micros>(ts_sec) * kMicrosPerSec +
                    (nanos_ ? ts_frac / 1000 : ts_frac);
      pending_.orig_len = orig_len;
      pending_.incl_len = incl_len;
      pending_.have = true;
    }
    if (!refill(pending_.incl_len)) {
      if (tailing()) return StreamStatus::kNeedMore;  // body still arriving
      // Body cut off at end of data: nothing after it to resync into.
      ++diag_.truncated;
      ++diag_.tail_truncated;
      m_err_truncated_->inc();
      TDAT_LOG_WARN("pcap: truncated record after %llu records "
                    "(%llu bytes); dropping tail",
                    static_cast<unsigned long long>(records_read_),
                    static_cast<unsigned long long>(bytes_read_));
      done_ = true;
      return StreamStatus::kEnd;
    }
    out.ts = pending_.ts;
    out.orig_len = pending_.orig_len;
    out.data = std::span<const std::uint8_t>(base() + pos_, pending_.incl_len);
    out.arena = pinned_ ? pin_ : std::static_pointer_cast<const void>(arena_);
    // bytes_read_ has tallied everything before this record (including any
    // resync skips), so right now it is the file offset of this record's
    // header.
    out.file_offset = bytes_read_;
    last_ts_ = out.ts;
    pos_ += pending_.incl_len;
    bytes_read_ += kRecordHeaderLen + pending_.incl_len;
    ++records_read_;
    m_records_->inc();
    m_bytes_->inc(kRecordHeaderLen + pending_.incl_len);
    pending_.have = false;
    return StreamStatus::kOk;
  }
}

PcapFile PcapStream::drain_to_file() {
  PcapFile out;
  out.nanosecond = nanos_;
  out.snaplen = snaplen_;
  // Heuristic capacity from the source size: BGP monitoring traces mix
  // ~70-byte pure ACKs with MSS-sized data segments, so ~100 bytes per
  // record on top of the 16-byte header keeps reallocation rare without
  // over-reserving on data-heavy captures. The size comes from the fstat
  // taken at open (source_remaining) plus what is already buffered — no
  // second pass over the file.
  std::uint64_t source_size = 0;
  const std::size_t remaining = source_remaining();
  if (remaining != SIZE_MAX) source_size = remaining;
  source_size += fill_ - pos_;
  out.records.reserve(source_size / (kRecordHeaderLen + 100) + 1);

  StreamRecord rec;
  while (next(rec)) {
    PcapRecord owned;
    owned.ts = rec.ts;
    owned.orig_len = rec.orig_len;
    owned.data.assign(rec.data.begin(), rec.data.end());
    out.records.push_back(std::move(owned));
  }
  out.ingest = diag_;
  return out;
}

}  // namespace tdat
