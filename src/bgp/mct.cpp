#include "bgp/mct.hpp"

namespace tdat {

MctResult mct_transfer_end(const std::vector<TimedBgpMessage>& messages,
                           Micros start, const MctOptions& opts) {
  MctResult res;
  res.end = start;
  std::set<Prefix> seen;
  Micros last_update_ts = start;

  for (const TimedBgpMessage& tm : messages) {
    if (tm.ts < start) continue;
    const BgpUpdate* upd = tm.msg.as_update();
    if (upd == nullptr) continue;  // OPEN/KEEPALIVE/NOTIFICATION don't count

    if (tm.ts - last_update_ts > opts.max_silence) break;

    if (!upd->withdrawn.empty()) {
      res.ended_by_repeat = true;
      break;
    }
    bool repeat = false;
    for (const Prefix& p : upd->nlri) {
      if (!seen.insert(p).second) {
        repeat = true;
        break;
      }
    }
    if (repeat) {
      res.ended_by_repeat = true;
      break;
    }
    ++res.update_count;
    res.prefix_count = seen.size();
    last_update_ts = tm.ts;
    res.end = tm.ts;
  }
  return res;
}

}  // namespace tdat
