#include "bgp/mct.hpp"

namespace tdat {

namespace {

std::size_t prefix_hash(Prefix p) noexcept {
  // Fibonacci multiplicative hash over (addr, length); quality only affects
  // probe lengths, never results.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p.addr) << 8) | p.length;
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32);
}

}  // namespace

void PrefixSet::clear() noexcept {
  ++gen_;
  size_ = 0;
  if (gen_ == 0) {  // generation wrap: lazily-dead slots would revive
    for (Slot& s : slots_) s.gen = 0;
    gen_ = 1;
  }
}

void PrefixSet::reserve(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n * 2) cap *= 2;  // keep load factor under 1/2
  if (cap <= slots_.size()) return;
  const std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  const std::size_t mask = cap - 1;
  for (const Slot& s : old) {
    if (s.gen != gen_) continue;
    std::size_t i = prefix_hash(s.prefix) & mask;
    while (slots_[i].gen == gen_) i = (i + 1) & mask;
    slots_[i] = Slot{s.prefix, gen_};
  }
}

void PrefixSet::grow() { reserve(size_ >= 8 ? size_ * 2 : 16); }

bool PrefixSet::insert(Prefix p) {
  if (slots_.empty() || size_ * 2 >= slots_.size()) grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = prefix_hash(p) & mask;
  while (slots_[i].gen == gen_) {
    if (slots_[i].prefix == p) return false;
    i = (i + 1) & mask;
  }
  slots_[i] = Slot{p, gen_};
  ++size_;
  return true;
}

MctResult mct_transfer_end(const std::vector<TimedBgpMessage>& messages,
                           Micros start, const MctOptions& opts) {
  PrefixSet seen;
  return mct_transfer_end(messages, start, opts, seen);
}

MctResult mct_transfer_end(const std::vector<TimedBgpMessage>& messages,
                           Micros start, const MctOptions& opts,
                           PrefixSet& seen) {
  MctResult res;
  res.end = start;
  seen.clear();
  Micros last_update_ts = start;

  for (const TimedBgpMessage& tm : messages) {
    if (tm.ts < start) continue;
    const BgpUpdate* upd = tm.msg.as_update();
    if (upd == nullptr) continue;  // OPEN/KEEPALIVE/NOTIFICATION don't count

    if (tm.ts - last_update_ts > opts.max_silence) break;

    if (!upd->withdrawn.empty()) {
      res.ended_by_repeat = true;
      break;
    }
    bool repeat = false;
    for (const Prefix& p : upd->nlri) {
      if (!seen.insert(p)) {
        repeat = true;
        break;
      }
    }
    if (repeat) {
      res.ended_by_repeat = true;
      break;
    }
    ++res.update_count;
    res.prefix_count = seen.size();
    last_update_ts = tm.ts;
    res.end = tm.ts;
  }
  return res;
}

}  // namespace tdat
