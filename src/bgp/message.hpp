// BGP-4 message model and wire codec (RFC 4271), covering what BGP
// monitoring needs: OPEN, UPDATE (withdrawn routes, path attributes, NLRI),
// KEEPALIVE, and NOTIFICATION. AS numbers are 2-octet, matching the traces
// of the paper's measurement period.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace tdat {

inline constexpr std::size_t kBgpMarkerLen = 16;  // all-ones sync marker
inline constexpr std::size_t kBgpHeaderLen = 19;
inline constexpr std::size_t kBgpMaxMessageLen = 4096;

enum class BgpType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepAlive = 4,
};

[[nodiscard]] const char* to_string(BgpType type);

// An IPv4 prefix as carried in NLRI / withdrawn-routes fields.
struct Prefix {
  std::uint32_t addr = 0;  // host order, low bits beyond `length` must be 0
  std::uint8_t length = 0;

  friend bool operator==(const Prefix&, const Prefix&) = default;
  friend auto operator<=>(const Prefix&, const Prefix&) = default;
  [[nodiscard]] std::string to_string() const;
};

struct AsPathSegment {
  enum : std::uint8_t { kAsSet = 1, kAsSequence = 2 };
  std::uint8_t type = kAsSequence;
  std::vector<std::uint16_t> asns;

  friend bool operator==(const AsPathSegment&, const AsPathSegment&) = default;
};

// The well-known attributes BGP monitoring cares about. Unrecognized
// attributes are preserved raw so parse/serialize round-trips.
struct PathAttributes {
  std::uint8_t origin = 0;  // 0=IGP 1=EGP 2=INCOMPLETE
  std::vector<AsPathSegment> as_path;
  std::uint32_t next_hop = 0;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  std::vector<std::uint32_t> communities;

  struct RawAttribute {
    std::uint8_t flags = 0;
    std::uint8_t type_code = 0;
    std::vector<std::uint8_t> value;
    friend bool operator==(const RawAttribute&, const RawAttribute&) = default;
  };
  std::vector<RawAttribute> unrecognized;

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;
  [[nodiscard]] std::string as_path_string() const;
};

struct BgpOpen {
  std::uint8_t version = 4;
  std::uint16_t my_as = 0;
  std::uint16_t hold_time = 180;
  std::uint32_t bgp_id = 0;
  std::vector<std::uint8_t> opt_params;  // preserved raw

  friend bool operator==(const BgpOpen&, const BgpOpen&) = default;
};

struct BgpUpdate {
  std::vector<Prefix> withdrawn;
  PathAttributes attrs;  // meaningful only when nlri is non-empty
  std::vector<Prefix> nlri;

  friend bool operator==(const BgpUpdate&, const BgpUpdate&) = default;
};

struct BgpKeepAlive {
  friend bool operator==(const BgpKeepAlive&, const BgpKeepAlive&) = default;
};

struct BgpNotification {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  friend bool operator==(const BgpNotification&, const BgpNotification&) = default;
};

struct BgpMessage {
  std::variant<BgpOpen, BgpUpdate, BgpKeepAlive, BgpNotification> body;

  [[nodiscard]] BgpType type() const {
    switch (body.index()) {
      case 0: return BgpType::kOpen;
      case 1: return BgpType::kUpdate;
      case 2: return BgpType::kKeepAlive;
      default: return BgpType::kNotification;
    }
  }
  [[nodiscard]] const BgpUpdate* as_update() const {
    return std::get_if<BgpUpdate>(&body);
  }

  friend bool operator==(const BgpMessage&, const BgpMessage&) = default;
};

// Serializes one message with header (marker, length, type).
[[nodiscard]] std::vector<std::uint8_t> serialize_message(const BgpMessage& msg);

// Parses exactly one complete message starting at data[0]; `data` must hold
// at least the length declared in the header.
[[nodiscard]] Result<BgpMessage> parse_message(std::span<const std::uint8_t> data);

// Peeks the declared total length of the message starting at data[0], or 0
// if fewer than kBgpHeaderLen bytes are available or the header is invalid.
[[nodiscard]] std::size_t peek_message_length(std::span<const std::uint8_t> data);

}  // namespace tdat
