// Synthetic routing-table generator: produces a full-table announcement as a
// realistic sequence of UPDATE messages (prefixes grouped by shared path
// attributes, Zipf-ish AS path lengths). This stands in for the operational
// routers' real tables, which are proprietary; the *volume and packing*
// (5-8 MB full table, a few prefixes per update) is what matters to the
// transport behaviour the analyzer studies.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/message.hpp"
#include "util/rng.hpp"

namespace tdat {

struct TableGenConfig {
  std::size_t prefix_count = 20'000;
  // Mean number of prefixes sharing one UPDATE (real tables average ~4).
  double prefixes_per_update = 4.0;
  std::uint16_t origin_as_min = 1000;
  std::uint16_t origin_as_max = 64000;
  std::uint32_t next_hop = 0x0a000001;  // 10.0.0.1
  double community_probability = 0.3;
};

// Deterministic for a given (config, rng state).
[[nodiscard]] std::vector<BgpUpdate> generate_table(const TableGenConfig& config,
                                                    Rng& rng);

// Total serialized size of the table announcement in bytes.
[[nodiscard]] std::uint64_t serialized_size(const std::vector<BgpUpdate>& updates);

// The massive update burst a routing event triggers (link failure, policy
// change): a fraction of the table is re-announced with different AS paths,
// and a smaller fraction withdrawn. This is the post-transfer workload of
// the paper's future work (§VII).
[[nodiscard]] std::vector<BgpUpdate> generate_update_burst(
    const std::vector<BgpUpdate>& table, double reannounce_fraction,
    double withdraw_fraction, Rng& rng);

}  // namespace tdat
