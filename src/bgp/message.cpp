#include "bgp/message.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace tdat {
namespace {

constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrCommunities = 8;

constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLen = 0x10;

[[nodiscard]] std::size_t prefix_octets(std::uint8_t length) {
  return (static_cast<std::size_t>(length) + 7) / 8;
}

void write_prefix(ByteWriter& w, const Prefix& p) {
  w.u8(p.length);
  const std::size_t n = prefix_octets(p.length);
  for (std::size_t i = 0; i < n; ++i) {
    w.u8(static_cast<std::uint8_t>(p.addr >> (24 - 8 * i)));
  }
}

bool read_prefix(ByteReader& r, Prefix& out) {
  out.length = r.u8();
  if (!r.ok() || out.length > 32) return false;
  out.addr = 0;
  const std::size_t n = prefix_octets(out.length);
  for (std::size_t i = 0; i < n; ++i) {
    out.addr |= static_cast<std::uint32_t>(r.u8()) << (24 - 8 * i);
  }
  return r.ok();
}

void write_attribute(ByteWriter& w, std::uint8_t flags, std::uint8_t type_code,
                     std::span<const std::uint8_t> value) {
  if (value.size() > 255) flags |= kFlagExtendedLen;
  w.u8(flags);
  w.u8(type_code);
  if (flags & kFlagExtendedLen) {
    w.u16be(static_cast<std::uint16_t>(value.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(value.size()));
  }
  w.bytes(value);
}

std::vector<std::uint8_t> encode_attributes(const PathAttributes& attrs) {
  ByteWriter w;
  {  // ORIGIN — well-known mandatory
    const std::uint8_t v[1] = {attrs.origin};
    write_attribute(w, kFlagTransitive, kAttrOrigin, v);
  }
  {  // AS_PATH
    ByteWriter path;
    for (const AsPathSegment& seg : attrs.as_path) {
      path.u8(seg.type);
      path.u8(static_cast<std::uint8_t>(seg.asns.size()));
      for (std::uint16_t asn : seg.asns) path.u16be(asn);
    }
    write_attribute(w, kFlagTransitive, kAttrAsPath, path.data());
  }
  {  // NEXT_HOP
    ByteWriter nh;
    nh.u32be(attrs.next_hop);
    write_attribute(w, kFlagTransitive, kAttrNextHop, nh.data());
  }
  if (attrs.med) {
    ByteWriter v;
    v.u32be(*attrs.med);
    write_attribute(w, kFlagOptional, kAttrMed, v.data());
  }
  if (attrs.local_pref) {
    ByteWriter v;
    v.u32be(*attrs.local_pref);
    write_attribute(w, kFlagTransitive, kAttrLocalPref, v.data());
  }
  if (!attrs.communities.empty()) {
    ByteWriter v;
    for (std::uint32_t c : attrs.communities) v.u32be(c);
    write_attribute(w, kFlagOptional | kFlagTransitive, kAttrCommunities, v.data());
  }
  for (const auto& raw : attrs.unrecognized) {
    write_attribute(w, raw.flags, raw.type_code, raw.value);
  }
  return w.take();
}

bool decode_attributes(std::span<const std::uint8_t> data, PathAttributes& out) {
  ByteReader r(data);
  while (r.remaining() > 0) {
    const std::uint8_t flags = r.u8();
    const std::uint8_t type_code = r.u8();
    std::size_t len = 0;
    if (flags & kFlagExtendedLen) {
      len = r.u16be();
    } else {
      len = r.u8();
    }
    const auto value = r.bytes(len);
    if (!r.ok()) return false;
    ByteReader v(value);
    switch (type_code) {
      case kAttrOrigin:
        if (len != 1) return false;
        out.origin = v.u8();
        break;
      case kAttrAsPath: {
        while (v.remaining() > 0) {
          AsPathSegment seg;
          seg.type = v.u8();
          const std::uint8_t count = v.u8();
          for (std::uint8_t i = 0; i < count; ++i) seg.asns.push_back(v.u16be());
          if (!v.ok()) return false;
          out.as_path.push_back(std::move(seg));
        }
        break;
      }
      case kAttrNextHop:
        if (len != 4) return false;
        out.next_hop = v.u32be();
        break;
      case kAttrMed:
        if (len != 4) return false;
        out.med = v.u32be();
        break;
      case kAttrLocalPref:
        if (len != 4) return false;
        out.local_pref = v.u32be();
        break;
      case kAttrCommunities: {
        if (len % 4 != 0) return false;
        while (v.remaining() > 0) out.communities.push_back(v.u32be());
        break;
      }
      default:
        out.unrecognized.push_back(
            {flags, type_code, std::vector<std::uint8_t>(value.begin(), value.end())});
        break;
    }
    if (!v.ok()) return false;
  }
  return true;
}

}  // namespace

const char* to_string(BgpType type) {
  switch (type) {
    case BgpType::kOpen: return "OPEN";
    case BgpType::kUpdate: return "UPDATE";
    case BgpType::kNotification: return "NOTIFICATION";
    case BgpType::kKeepAlive: return "KEEPALIVE";
  }
  return "?";
}

std::string Prefix::to_string() const {
  return ipv4_to_string(addr) + "/" + std::to_string(length);
}

std::string PathAttributes::as_path_string() const {
  std::string out;
  for (const AsPathSegment& seg : as_path) {
    for (std::uint16_t asn : seg.asns) {
      if (!out.empty()) out += ' ';
      out += std::to_string(asn);
    }
  }
  return out;
}

std::vector<std::uint8_t> serialize_message(const BgpMessage& msg) {
  ByteWriter body;
  switch (msg.type()) {
    case BgpType::kOpen: {
      const auto& open = std::get<BgpOpen>(msg.body);
      body.u8(open.version);
      body.u16be(open.my_as);
      body.u16be(open.hold_time);
      body.u32be(open.bgp_id);
      body.u8(static_cast<std::uint8_t>(open.opt_params.size()));
      body.bytes(open.opt_params);
      break;
    }
    case BgpType::kUpdate: {
      const auto& upd = std::get<BgpUpdate>(msg.body);
      ByteWriter withdrawn;
      for (const Prefix& p : upd.withdrawn) write_prefix(withdrawn, p);
      body.u16be(static_cast<std::uint16_t>(withdrawn.size()));
      body.bytes(withdrawn.data());
      const auto attrs =
          upd.nlri.empty() ? std::vector<std::uint8_t>{} : encode_attributes(upd.attrs);
      body.u16be(static_cast<std::uint16_t>(attrs.size()));
      body.bytes(attrs);
      for (const Prefix& p : upd.nlri) write_prefix(body, p);
      break;
    }
    case BgpType::kKeepAlive:
      break;
    case BgpType::kNotification: {
      const auto& notif = std::get<BgpNotification>(msg.body);
      body.u8(notif.code);
      body.u8(notif.subcode);
      body.bytes(notif.data);
      break;
    }
  }

  ByteWriter w;
  w.fill(16, 0xff);  // marker
  w.u16be(static_cast<std::uint16_t>(kBgpHeaderLen + body.size()));
  w.u8(static_cast<std::uint8_t>(msg.type()));
  w.bytes(body.data());
  TDAT_ENSURES(w.size() <= kBgpMaxMessageLen);
  return w.take();
}

std::size_t peek_message_length(std::span<const std::uint8_t> data) {
  if (data.size() < kBgpHeaderLen) return 0;
  for (std::size_t i = 0; i < 16; ++i) {
    if (data[i] != 0xff) return 0;
  }
  const std::size_t len = static_cast<std::size_t>(data[16]) << 8 | data[17];
  if (len < kBgpHeaderLen || len > kBgpMaxMessageLen) return 0;
  return len;
}

Result<BgpMessage> parse_message(std::span<const std::uint8_t> data) {
  const std::size_t len = peek_message_length(data);
  if (len == 0) return Err<BgpMessage>("bgp: bad header");
  if (data.size() < len) return Err<BgpMessage>("bgp: truncated message");

  const std::uint8_t type = data[18];
  ByteReader r(data.subspan(kBgpHeaderLen, len - kBgpHeaderLen));
  BgpMessage msg;
  switch (static_cast<BgpType>(type)) {
    case BgpType::kOpen: {
      BgpOpen open;
      open.version = r.u8();
      open.my_as = r.u16be();
      open.hold_time = r.u16be();
      open.bgp_id = r.u32be();
      const std::uint8_t opt_len = r.u8();
      const auto opt = r.bytes(opt_len);
      if (!r.ok()) return Err<BgpMessage>("bgp: truncated OPEN");
      open.opt_params.assign(opt.begin(), opt.end());
      msg.body = std::move(open);
      break;
    }
    case BgpType::kUpdate: {
      BgpUpdate upd;
      const std::uint16_t withdrawn_len = r.u16be();
      {
        ByteReader wr(r.bytes(withdrawn_len));
        while (wr.ok() && wr.remaining() > 0) {
          Prefix p;
          if (!read_prefix(wr, p)) return Err<BgpMessage>("bgp: bad withdrawn prefix");
          upd.withdrawn.push_back(p);
        }
      }
      const std::uint16_t attr_len = r.u16be();
      const auto attr_bytes = r.bytes(attr_len);
      if (!r.ok()) return Err<BgpMessage>("bgp: truncated UPDATE");
      if (!decode_attributes(attr_bytes, upd.attrs)) {
        return Err<BgpMessage>("bgp: bad path attributes");
      }
      while (r.remaining() > 0) {
        Prefix p;
        if (!read_prefix(r, p)) return Err<BgpMessage>("bgp: bad NLRI prefix");
        upd.nlri.push_back(p);
      }
      msg.body = std::move(upd);
      break;
    }
    case BgpType::kKeepAlive:
      if (len != kBgpHeaderLen) return Err<BgpMessage>("bgp: KEEPALIVE with body");
      msg.body = BgpKeepAlive{};
      break;
    case BgpType::kNotification: {
      BgpNotification notif;
      notif.code = r.u8();
      notif.subcode = r.u8();
      if (!r.ok()) return Err<BgpMessage>("bgp: truncated NOTIFICATION");
      const auto rest = r.bytes(r.remaining());
      notif.data.assign(rest.begin(), rest.end());
      msg.body = std::move(notif);
      break;
    }
    default:
      return Err<BgpMessage>("bgp: unknown message type " + std::to_string(type));
  }
  return msg;
}

}  // namespace tdat
