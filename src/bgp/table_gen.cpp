#include "bgp/table_gen.hpp"

#include <algorithm>

namespace tdat {

std::vector<BgpUpdate> generate_table(const TableGenConfig& config, Rng& rng) {
  std::vector<BgpUpdate> out;
  std::size_t generated = 0;
  // Walk the prefix space deterministically so all prefixes are distinct:
  // successive /24-or-shorter blocks carved out of 1.0.0.0 upward.
  std::uint32_t cursor = 0x01000000;

  while (generated < config.prefix_count) {
    BgpUpdate upd;
    // Path shared by this update's prefixes.
    const int path_len = static_cast<int>(rng.uniform(2, 6));
    AsPathSegment seg;
    for (int i = 0; i < path_len; ++i) {
      seg.asns.push_back(static_cast<std::uint16_t>(
          rng.uniform(config.origin_as_min, config.origin_as_max)));
    }
    upd.attrs.as_path.push_back(std::move(seg));
    upd.attrs.origin = static_cast<std::uint8_t>(rng.uniform(0, 2));
    upd.attrs.next_hop = config.next_hop;
    if (rng.chance(0.5)) upd.attrs.med = static_cast<std::uint32_t>(rng.uniform(0, 100));
    if (rng.chance(config.community_probability)) {
      upd.attrs.communities.push_back(
          static_cast<std::uint32_t>(rng.uniform(1, 1 << 24)));
    }

    // 1..2*mean prefixes in this update.
    const auto max_batch = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(2.0 * config.prefixes_per_update));
    auto batch = static_cast<std::size_t>(rng.uniform(1, max_batch));
    batch = std::min(batch, config.prefix_count - generated);
    for (std::size_t i = 0; i < batch; ++i) {
      Prefix p;
      p.length = static_cast<std::uint8_t>(rng.uniform(16, 24));
      const std::uint32_t mask = p.length == 0 ? 0 : ~std::uint32_t{0} << (32 - p.length);
      p.addr = cursor & mask;
      // Advance past this prefix's block so prefixes never overlap.
      cursor = p.addr + (p.length == 0 ? 0 : (1u << (32 - p.length)));
      upd.nlri.push_back(p);
    }
    generated += batch;
    out.push_back(std::move(upd));
  }
  return out;
}

std::vector<BgpUpdate> generate_update_burst(const std::vector<BgpUpdate>& table,
                                             double reannounce_fraction,
                                             double withdraw_fraction, Rng& rng) {
  std::vector<BgpUpdate> out;
  for (const BgpUpdate& orig : table) {
    if (rng.chance(withdraw_fraction)) {
      BgpUpdate withdraw;
      withdraw.withdrawn = orig.nlri;
      out.push_back(std::move(withdraw));
    } else if (rng.chance(reannounce_fraction)) {
      BgpUpdate re = orig;
      // The routing event rerouted these prefixes: new path, same NLRI.
      re.attrs.as_path.clear();
      AsPathSegment seg;
      const int len = static_cast<int>(rng.uniform(2, 6));
      for (int i = 0; i < len; ++i) {
        seg.asns.push_back(static_cast<std::uint16_t>(rng.uniform(1000, 64000)));
      }
      re.attrs.as_path.push_back(std::move(seg));
      out.push_back(std::move(re));
    }
  }
  return out;
}

std::uint64_t serialized_size(const std::vector<BgpUpdate>& updates) {
  std::uint64_t total = 0;
  for (const BgpUpdate& upd : updates) {
    total += serialize_message(BgpMessage{upd}).size();
  }
  return total;
}

}  // namespace tdat
