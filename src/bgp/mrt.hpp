// MRT export format (draft-ietf-grow-mrt / RFC 6396 subset): BGP4MP
// MESSAGE records, the format Quagga collectors archive BGP updates in and
// what pcap2bgp emits (§II-A, Table VI).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/msg_stream.hpp"
#include "util/result.hpp"

namespace tdat {

struct MrtRecord {
  Micros ts = 0;  // stored with second granularity on the wire
  std::uint16_t peer_as = 0;
  std::uint16_t local_as = 0;
  std::uint32_t peer_ip = 0;
  std::uint32_t local_ip = 0;
  std::vector<std::uint8_t> bgp_message;  // raw BGP message incl. header

  [[nodiscard]] Result<BgpMessage> parse() const { return parse_message(bgp_message); }
};

// Serializes records as MRT type 16 (BGP4MP), subtype 1 (BGP4MP_MESSAGE),
// IPv4 AFI.
[[nodiscard]] std::vector<std::uint8_t> serialize_mrt(
    const std::vector<MrtRecord>& records);

[[nodiscard]] Result<std::vector<MrtRecord>> parse_mrt(
    std::span<const std::uint8_t> image);

[[nodiscard]] bool write_mrt_file(const std::string& path,
                                  const std::vector<MrtRecord>& records);
[[nodiscard]] Result<std::vector<MrtRecord>> read_mrt_file(const std::string& path);

}  // namespace tdat
