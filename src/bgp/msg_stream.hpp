// Message framing over a reconstructed TCP byte stream: feed chunks in
// stream order, get out complete BGP messages with the timestamp at which
// each message became fully available to the receiver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/message.hpp"
#include "util/time.hpp"

namespace tdat {

struct TimedBgpMessage {
  Micros ts = 0;
  BgpMessage msg;
  // Stream offset one past the message's last byte (relative to the first
  // byte fed into the stream); -1 when unknown. Lets callers map a message
  // back to TCP sequence space (e.g. to find the ACK that covered it).
  std::int64_t end_offset = -1;
};

class BgpMessageStream {
 public:
  // Returns all messages completed by this chunk. Undecodable bytes at the
  // head of the stream (lost framing) are skipped up to the next 16-byte
  // 0xff marker run; `skipped_bytes()` reports how many bytes were dropped
  // and `resyncs()` how many times framing was lost.
  [[nodiscard]] std::vector<TimedBgpMessage> feed(std::span<const std::uint8_t> bytes,
                                                  Micros ts);

  // Appending form for reused output buffers. When the internal stash is
  // empty (the steady state: chunks normally end on message boundaries),
  // messages are parsed straight out of `bytes` and only a trailing partial
  // message is copied into the stash — no per-chunk buffer append/erase
  // churn, no allocation once the stash and `out` are warm.
  void feed_into(std::span<const std::uint8_t> bytes, Micros ts,
                 std::vector<TimedBgpMessage>& out);

  // Rewinds to a fresh stream, keeping the stash buffer's capacity.
  void reset() noexcept {
    buf_.clear();
    stream_base_ = 0;
    skipped_ = 0;
    parse_errors_ = 0;
    resyncs_ = 0;
  }

  [[nodiscard]] std::uint64_t skipped_bytes() const { return skipped_; }
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }
  // How many times framing was lost and the stream had to hunt for the next
  // 16-byte marker (each event may skip many bytes; see skipped_bytes()).
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  // Parses every complete message out of `data` (whose first byte sits at
  // stream_base_), appending to `out`; returns the number of bytes consumed
  // (complete messages plus skipped garbage). Does not touch buf_.
  std::size_t parse_available(std::span<const std::uint8_t> data, Micros ts,
                              std::vector<TimedBgpMessage>& out);

  std::vector<std::uint8_t> buf_;
  std::int64_t stream_base_ = 0;  // stream offset of buf_[0]
  std::uint64_t skipped_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace tdat
