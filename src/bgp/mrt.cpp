#include "bgp/mrt.hpp"

#include <cstdio>
#include <memory>

#include "util/bytes.hpp"

namespace tdat {
namespace {

constexpr std::uint16_t kMrtTypeBgp4mp = 16;
constexpr std::uint16_t kMrtSubtypeMessage = 1;
constexpr std::uint16_t kAfiIpv4 = 1;

struct FileCloser {
  void operator()(std::FILE* f) const { std::fclose(f); }
};

}  // namespace

std::vector<std::uint8_t> serialize_mrt(const std::vector<MrtRecord>& records) {
  ByteWriter w;
  for (const MrtRecord& rec : records) {
    // BGP4MP_MESSAGE body: peer AS, local AS, ifindex, AFI, peer IP,
    // local IP, then the BGP message.
    const std::size_t body_len = 2 + 2 + 2 + 2 + 4 + 4 + rec.bgp_message.size();
    w.u32be(static_cast<std::uint32_t>(rec.ts / kMicrosPerSec));
    w.u16be(kMrtTypeBgp4mp);
    w.u16be(kMrtSubtypeMessage);
    w.u32be(static_cast<std::uint32_t>(body_len));
    w.u16be(rec.peer_as);
    w.u16be(rec.local_as);
    w.u16be(0);  // interface index
    w.u16be(kAfiIpv4);
    w.u32be(rec.peer_ip);
    w.u32be(rec.local_ip);
    w.bytes(rec.bgp_message);
  }
  return w.take();
}

Result<std::vector<MrtRecord>> parse_mrt(std::span<const std::uint8_t> image) {
  std::vector<MrtRecord> out;
  ByteReader r(image);
  while (r.remaining() > 0) {
    if (r.remaining() < 12) {
      return Err<std::vector<MrtRecord>>("mrt: truncated record header");
    }
    MrtRecord rec;
    rec.ts = static_cast<Micros>(r.u32be()) * kMicrosPerSec;
    const std::uint16_t type = r.u16be();
    const std::uint16_t subtype = r.u16be();
    const std::uint32_t len = r.u32be();
    const auto body = r.bytes(len);
    if (!r.ok()) return Err<std::vector<MrtRecord>>("mrt: truncated record body");
    if (type != kMrtTypeBgp4mp || subtype != kMrtSubtypeMessage) {
      continue;  // other record types are skippable by design
    }
    ByteReader b(body);
    rec.peer_as = b.u16be();
    rec.local_as = b.u16be();
    (void)b.u16be();  // interface index
    const std::uint16_t afi = b.u16be();
    if (afi != kAfiIpv4) continue;
    rec.peer_ip = b.u32be();
    rec.local_ip = b.u32be();
    const auto msg = b.bytes(b.remaining());
    if (!b.ok()) return Err<std::vector<MrtRecord>>("mrt: bad BGP4MP body");
    rec.bgp_message.assign(msg.begin(), msg.end());
    out.push_back(std::move(rec));
  }
  return out;
}

bool write_mrt_file(const std::string& path, const std::vector<MrtRecord>& records) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  const auto image = serialize_mrt(records);
  return std::fwrite(image.data(), 1, image.size(), f.get()) == image.size();
}

Result<std::vector<MrtRecord>> read_mrt_file(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) return Err<std::vector<MrtRecord>>("mrt: cannot open " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long len = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (len < 0) return Err<std::vector<MrtRecord>>("mrt: cannot stat " + path);
  std::vector<std::uint8_t> image(static_cast<std::size_t>(len));
  if (!image.empty() &&
      std::fread(image.data(), 1, image.size(), f.get()) != image.size()) {
    return Err<std::vector<MrtRecord>>("mrt: short read on " + path);
  }
  return parse_mrt(image);
}

}  // namespace tdat
