// Minimum Collection Time (MCT) — identification of the END of a BGP table
// transfer from a stream of received BGP messages, after Zhang et al.,
// "Identifying BGP routing table transfers" (SIGCOMM MineNet 2005), ref [36].
//
// Per the paper's footnote 4, the TCP connection start marks the transfer
// start; MCT is only used to estimate where the transfer ends. The signature
// of a table transfer is that every prefix is announced exactly once: the
// transfer ends at the last update before (a) a prefix repeats, (b) a
// withdrawal appears (both mean ordinary routing dynamics resumed), or
// (c) the stream goes silent for longer than `max_silence` (which must be
// generous: legitimate transfers pause for up to a BGP hold-time under
// peer-group blocking, §II-B3).
#pragma once

#include <set>
#include <vector>

#include "bgp/msg_stream.hpp"
#include "util/time.hpp"

namespace tdat {

struct MctOptions {
  Micros max_silence = 300 * kMicrosPerSec;
};

struct MctResult {
  Micros end = 0;               // timestamp of the last in-transfer update
  std::size_t update_count = 0; // UPDATE messages attributed to the transfer
  std::size_t prefix_count = 0; // distinct prefixes announced
  bool ended_by_repeat = false; // saw a duplicate announcement / withdrawal
};

// Messages must be in timestamp order; only messages with ts >= start are
// considered. If no update follows `start`, `end` == `start`.
[[nodiscard]] MctResult mct_transfer_end(const std::vector<TimedBgpMessage>& messages,
                                         Micros start, const MctOptions& opts = {});

}  // namespace tdat
