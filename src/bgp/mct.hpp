// Minimum Collection Time (MCT) — identification of the END of a BGP table
// transfer from a stream of received BGP messages, after Zhang et al.,
// "Identifying BGP routing table transfers" (SIGCOMM MineNet 2005), ref [36].
//
// Per the paper's footnote 4, the TCP connection start marks the transfer
// start; MCT is only used to estimate where the transfer ends. The signature
// of a table transfer is that every prefix is announced exactly once: the
// transfer ends at the last update before (a) a prefix repeats, (b) a
// withdrawal appears (both mean ordinary routing dynamics resumed), or
// (c) the stream goes silent for longer than `max_silence` (which must be
// generous: legitimate transfers pause for up to a BGP hold-time under
// peer-group blocking, §II-B3).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/msg_stream.hpp"
#include "util/time.hpp"

namespace tdat {

// Open-addressing membership set over announced prefixes. A full table
// transfer announces up to the whole RIB once, so the node-per-prefix
// std::set this replaces was the analysis stage's single biggest allocator
// (~one node per prefix per connection). Generation-tagged slots make
// clear() O(1) and a warm reused set allocation-free.
class PrefixSet {
 public:
  // Inserts; returns false if `p` was already present.
  bool insert(Prefix p);
  [[nodiscard]] std::size_t size() const { return size_; }
  void clear() noexcept;
  void reserve(std::size_t n);

 private:
  struct Slot {
    Prefix prefix;
    std::uint32_t gen = 0;  // live iff == gen_
  };
  void grow();

  std::vector<Slot> slots_;
  std::uint32_t gen_ = 1;
  std::size_t size_ = 0;
};

struct MctOptions {
  Micros max_silence = 300 * kMicrosPerSec;
};

struct MctResult {
  Micros end = 0;               // timestamp of the last in-transfer update
  std::size_t update_count = 0; // UPDATE messages attributed to the transfer
  std::size_t prefix_count = 0; // distinct prefixes announced
  bool ended_by_repeat = false; // saw a duplicate announcement / withdrawal
};

// Messages must be in timestamp order; only messages with ts >= start are
// considered. If no update follows `start`, `end` == `start`.
[[nodiscard]] MctResult mct_transfer_end(const std::vector<TimedBgpMessage>& messages,
                                         Micros start, const MctOptions& opts = {});

// Scratch-reusing form: `seen` is cleared and used as the announced-prefix
// membership table, so a warm set makes MCT detection allocation-free.
[[nodiscard]] MctResult mct_transfer_end(const std::vector<TimedBgpMessage>& messages,
                                         Micros start, const MctOptions& opts,
                                         PrefixSet& seen);

}  // namespace tdat
