#include "bgp/msg_stream.hpp"

namespace tdat {

std::vector<TimedBgpMessage> BgpMessageStream::feed(
    std::span<const std::uint8_t> bytes, Micros ts) {
  std::vector<TimedBgpMessage> out;
  feed_into(bytes, ts, out);
  return out;
}

std::size_t BgpMessageStream::parse_available(
    std::span<const std::uint8_t> data, Micros ts,
    std::vector<TimedBgpMessage>& out) {
  std::size_t pos = 0;
  while (true) {
    const std::span rest = data.subspan(pos);
    if (rest.size() < kBgpHeaderLen) break;
    const std::size_t len = peek_message_length(rest);
    if (len == 0) {
      // Bad framing: resynchronize by advancing one byte.
      ++pos;
      ++skipped_;
      continue;
    }

    if (rest.size() < len) break;  // wait for more bytes
    auto parsed = parse_message(rest.first(len));
    if (parsed.ok()) {
      out.push_back({ts, std::move(parsed).value(),
                     stream_base_ + static_cast<std::int64_t>(pos + len)});
    } else {
      ++parse_errors_;
    }
    pos += len;
  }
  return pos;
}

void BgpMessageStream::feed_into(std::span<const std::uint8_t> bytes, Micros ts,
                                 std::vector<TimedBgpMessage>& out) {
  if (buf_.empty()) {
    // Steady state: parse straight from the caller's bytes; stash only the
    // trailing partial message (usually nothing).
    const std::size_t pos = parse_available(bytes, ts, out);
    stream_base_ += static_cast<std::int64_t>(pos);
    buf_.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos), bytes.end());
    return;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  const std::size_t pos = parse_available(buf_, ts, out);
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  stream_base_ += static_cast<std::int64_t>(pos);
}

}  // namespace tdat
