#include "bgp/msg_stream.hpp"

namespace tdat {

std::vector<TimedBgpMessage> BgpMessageStream::feed(
    std::span<const std::uint8_t> bytes, Micros ts) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  std::vector<TimedBgpMessage> out;
  std::size_t pos = 0;
  while (true) {
    const std::span rest = std::span(buf_).subspan(pos);
    if (rest.size() < kBgpHeaderLen) break;
    const std::size_t len = peek_message_length(rest);
    if (len == 0) {
      // Bad framing: resynchronize by advancing one byte.
      ++pos;
      ++skipped_;
      continue;
    }

    if (rest.size() < len) break;  // wait for more bytes
    auto parsed = parse_message(rest.first(len));
    if (parsed.ok()) {
      out.push_back({ts, std::move(parsed).value(),
                     stream_base_ + static_cast<std::int64_t>(pos + len)});
    } else {
      ++parse_errors_;
    }
    pos += len;
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  stream_base_ += static_cast<std::int64_t>(pos);
  return out;
}

}  // namespace tdat
