#include "bgp/msg_stream.hpp"

#include <cstring>

namespace tdat {
namespace {

// Length of a run of 0xff bytes starting at `p`, capped at `max`.
std::size_t ff_run(const std::uint8_t* p, std::size_t max) {
  std::size_t n = 0;
  while (n < max && p[n] == 0xff) ++n;
  return n;
}

}  // namespace

std::vector<TimedBgpMessage> BgpMessageStream::feed(
    std::span<const std::uint8_t> bytes, Micros ts) {
  std::vector<TimedBgpMessage> out;
  feed_into(bytes, ts, out);
  return out;
}

std::size_t BgpMessageStream::parse_available(
    std::span<const std::uint8_t> data, Micros ts,
    std::vector<TimedBgpMessage>& out) {
  std::size_t pos = 0;
  while (true) {
    const std::span rest = data.subspan(pos);
    if (rest.size() < kBgpHeaderLen) break;
    const std::size_t len = peek_message_length(rest);
    if (len == 0) {
      // Bad framing (malformed length field or scribbled marker): jump
      // straight to the next 16-byte 0xff marker run instead of re-peeking at
      // every offset. A partial run at the tail is kept — the rest of the
      // marker may arrive in the next chunk.
      ++resyncs_;
      std::size_t k = 1;
      while (k < rest.size()) {
        const auto* hit = static_cast<const std::uint8_t*>(
            std::memchr(rest.data() + k, 0xff, rest.size() - k));
        if (hit == nullptr) {
          k = rest.size();  // no marker byte at all: skip the whole tail
          break;
        }
        k = static_cast<std::size_t>(hit - rest.data());
        const std::size_t run = ff_run(hit, rest.size() - k);
        if (run >= kBgpMarkerLen || k + run == rest.size()) break;
        k += run;  // too-short run with data after it: keep searching
      }
      pos += k;
      skipped_ += k;
      continue;
    }

    if (rest.size() < len) break;  // wait for more bytes
    auto parsed = parse_message(rest.first(len));
    if (parsed.ok()) {
      out.push_back({ts, std::move(parsed).value(),
                     stream_base_ + static_cast<std::int64_t>(pos + len)});
    } else {
      ++parse_errors_;
    }
    pos += len;
  }
  return pos;
}

void BgpMessageStream::feed_into(std::span<const std::uint8_t> bytes, Micros ts,
                                 std::vector<TimedBgpMessage>& out) {
  if (buf_.empty()) {
    // Steady state: parse straight from the caller's bytes; stash only the
    // trailing partial message (usually nothing).
    const std::size_t pos = parse_available(bytes, ts, out);
    stream_base_ += static_cast<std::int64_t>(pos);
    buf_.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos), bytes.end());
    return;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  const std::size_t pos = parse_available(buf_, ts, out);
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  stream_base_ += static_cast<std::int64_t>(pos);
}

}  // namespace tdat
