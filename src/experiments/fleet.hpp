// Fleet simulation: scaled-down stand-ins for the paper's three datasets
// (Table I) — ISP_A-1 (vendor collector, frequent session resets), ISP_A-2
// (Quagga collector) and RouteViews (eBGP, small 16 KB advertised window,
// aggressive RTO backoff).
//
// Each simulated router gets a behaviour profile drawn deterministically
// from the fleet seed: path RTT, table size, an optional BGP pacing timer,
// loss characteristics, collector load, and (rarely) the zero-window probe
// bug. Every transfer is simulated as real wire traffic, captured by the
// sniffer tap, and analyzed by T-DAT; the ground-truth labels ride along so
// experiments can compare inference against what was injected.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "sim/world.hpp"

namespace tdat {

enum class CollectorKind : std::uint8_t { kVendor, kQuagga };

struct FleetConfig {
  std::string name = "fleet";
  CollectorKind collector = CollectorKind::kVendor;
  std::size_t routers = 24;
  // Transfers per router (uniform in [min, max]); the vendor reset bug of
  // ISP_A-1 shows up as a high transfer count.
  std::size_t transfers_min = 2;
  std::size_t transfers_max = 6;
  bool ebgp = false;  // eBGP: wide-area RTTs
  std::uint32_t recv_window = 64 * 1024;
  // TCP retransmission behaviour of the *routers* peering with this
  // collector; the paper observed RouteViews peers backing off to seconds
  // after two or three timeouts.
  Micros sender_min_rto = 300 * kMicrosPerMilli;
  double sender_rto_backoff = 2.0;
  // Scaled "full table" size in prefixes (the real table is ~300k). Large
  // enough that a table spans several receive windows, so receiver-side
  // flow control has room to act as it does at full scale.
  std::size_t prefix_base = 12'000;
  std::uint64_t seed = 1;

  // Behaviour mix (per router).
  double p_timer = 0.45;          // timer-driven pacing (§II-B1)
  // Messages released per timer tick (uniform range). Vendor routers in
  // ISP_A-1 push large batches per tick, so their transfers are quick
  // despite the gaps; Quagga-facing routers trickle more slowly.
  std::size_t timer_msgs_min = 15;
  std::size_t timer_msgs_max = 45;
  double p_local_loss = 0.20;     // receiver-interface tail drops (§II-B2)
  double p_net_loss = 0.15;       // random in-network loss
  double net_loss_max = 0.03;     // worst-case loss rate on a bad transfer
  double p_slow_collector = 0.20; // overloaded receiving BGP process
  double p_probe_bug = 0.05;      // zero-window probe bug (§IV-B)
  // Per-transfer trigger mix: the rest are router (sender) resets.
  double p_receiver_triggered = 0.25;
};

// What caused the session reset that started this transfer (the paper
// infers this with the method of [9] and marks it in Fig. 14). The
// triggering end is re-establishing sessions with ALL its peers at once,
// so it tends to be the stressed, bottleneck side.
enum class Trigger : std::uint8_t { kUnknown, kSenderReset, kReceiverReset };

// Ground truth injected into one transfer.
struct GroundTruth {
  Trigger trigger = Trigger::kUnknown;
  bool timer = false;
  Micros timer_value = 0;
  bool local_loss = false;
  bool net_loss = false;
  bool slow_collector = false;
  bool probe_bug = false;
};

struct TransferRecord {
  std::size_t router = 0;
  std::size_t transfer_index = 0;
  GroundTruth truth;
  ConnectionAnalysis analysis;
  std::uint64_t trace_packets = 0;
  std::uint64_t trace_bytes = 0;
  bool sender_finished = false;
};

struct FleetResult {
  FleetConfig config;
  std::vector<TransferRecord> transfers;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;

  [[nodiscard]] std::vector<double> durations_seconds() const;
};

// Simulates and analyzes the whole fleet. Runtime scales with routers x
// transfers x prefix_base; the defaults run in a few seconds.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config,
                                    const AnalyzerOptions& opts = {});

// The paper's three datasets, scaled (Table I).
[[nodiscard]] FleetConfig isp_a1_config();  // ISP_A-1: vendor collector, reset bug
[[nodiscard]] FleetConfig isp_a2_config();  // ISP_A-2: Quagga collector
[[nodiscard]] FleetConfig rv_config();      // RouteViews: eBGP, 16 KB window

}  // namespace tdat
