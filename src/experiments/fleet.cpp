#include "experiments/fleet.hpp"

#include <algorithm>
#include <limits>

#include "bgp/table_gen.hpp"

namespace tdat {
namespace {

// Per-router behaviour drawn once from the fleet seed, so a router's
// transfers are comparable (same table, same path) and differ only in the
// transient impairments — which is what the stretch-ratio experiment
// (Fig. 4) measures.
struct RouterProfile {
  Micros one_way = 0;
  std::size_t prefixes = 0;
  std::uint64_t table_seed = 0;
  GroundTruth traits;  // which problems this router CAN exhibit
  Micros timer_value = 0;
  std::size_t msgs_per_tick = 0;
};

RouterProfile sample_router(const FleetConfig& cfg, Rng& rng) {
  RouterProfile r;
  r.one_way = cfg.ebgp ? from_millis(rng.uniform(8, 50))
                       : from_millis(rng.uniform(1, 10));
  r.prefixes = static_cast<std::size_t>(
      static_cast<double>(cfg.prefix_base) * rng.uniform_real(0.8, 1.25));
  r.table_seed = static_cast<std::uint64_t>(rng.uniform(1, 1 << 30));

  if (rng.chance(cfg.p_timer)) {
    r.traits.timer = true;
    // 200 ms is the prevalent vendor default (§IV-B); others appear too.
    const Micros values[] = {80, 100, 200, 200, 200, 400};
    r.timer_value = from_millis(values[rng.uniform(0, 5)]);
    r.msgs_per_tick = static_cast<std::size_t>(
        rng.uniform(static_cast<std::int64_t>(cfg.timer_msgs_min),
                    static_cast<std::int64_t>(cfg.timer_msgs_max)));
    r.traits.timer_value = r.timer_value;
  }
  r.traits.local_loss = rng.chance(cfg.p_local_loss);
  r.traits.net_loss = rng.chance(cfg.p_net_loss);
  r.traits.slow_collector = rng.chance(cfg.p_slow_collector);
  r.traits.probe_bug = rng.chance(cfg.p_probe_bug);
  return r;
}

}  // namespace

std::vector<double> FleetResult::durations_seconds() const {
  std::vector<double> out;
  out.reserve(transfers.size());
  for (const TransferRecord& t : transfers) {
    out.push_back(to_seconds(t.analysis.transfer_duration()));
  }
  return out;
}

FleetResult run_fleet(const FleetConfig& cfg, const AnalyzerOptions& opts) {
  FleetResult result;
  result.config = cfg;
  Rng fleet_rng(cfg.seed);

  for (std::size_t router = 0; router < cfg.routers; ++router) {
    Rng router_rng = fleet_rng.fork();
    const RouterProfile profile = sample_router(cfg, router_rng);

    // The router's table is fixed across its transfers.
    Rng table_rng(profile.table_seed);
    TableGenConfig tg;
    tg.prefix_count = profile.prefixes;
    const auto messages = serialize_updates(generate_table(tg, table_rng));

    const auto n_transfers = static_cast<std::size_t>(router_rng.uniform(
        static_cast<std::int64_t>(cfg.transfers_min),
        static_cast<std::int64_t>(cfg.transfers_max)));

    for (std::size_t xfer = 0; xfer < n_transfers; ++xfer) {
      const auto world_seed = static_cast<std::uint64_t>(
          router_rng.uniform(1, std::numeric_limits<std::int32_t>::max()));
      SimWorld world(world_seed);
      Rng jitter(world_seed ^ 0x51ed);

      SessionSpec spec;
      spec.up_fwd.propagation_delay = profile.one_way;
      spec.up_rev.propagation_delay = profile.one_way;
      spec.receiver_tcp.recv_buf_capacity = cfg.recv_window;
      spec.sender_tcp.min_rto = cfg.sender_min_rto;
      spec.sender_tcp.rto_backoff = cfg.sender_rto_backoff;
      spec.bgp.my_as = static_cast<std::uint16_t>(64000 + router);

      // Baseline collector behaviour: ingesting and archiving updates is
      // never free, and the load varies between transfers — the ordinary
      // variability behind modest stretch ratios (Fig. 4).
      spec.collector.read_interval = from_millis(jitter.uniform(10, 40));
      spec.collector.read_chunk =
          static_cast<std::size_t>(jitter.uniform(4, 16)) * 1024;

      GroundTruth truth;
      // What reset the session: a collector restart stresses the receiving
      // side (it is re-ingesting tables from everyone at once); a router
      // reset stresses the sending side (it is rebuilding sessions with all
      // its peers). The stress shows up on top of the router's traits.
      if (jitter.chance(cfg.p_receiver_triggered)) {
        truth.trigger = Trigger::kReceiverReset;
        spec.receiver_tcp.recv_buf_capacity =
            std::min<std::uint32_t>(cfg.recv_window, 12 * 1024);
        spec.collector.read_interval = from_millis(jitter.uniform(80, 200));
        spec.collector.read_chunk = static_cast<std::size_t>(jitter.uniform(4, 8)) * 1024;
      } else {
        truth.trigger = Trigger::kSenderReset;
        // A rebooting router usually trickles its table out between its
        // other sessions' work — but §II-B2's routers do the opposite and
        // blast queued updates to all peers at once, which is exactly what
        // overruns the collector's interface queue. Routers with the
        // local-loss trait keep their blast.
        if (!profile.traits.timer && !profile.traits.local_loss &&
            jitter.chance(0.7)) {
          spec.bgp.timer_driven = true;
          spec.bgp.timer_interval = from_millis(jitter.uniform(20, 60));
          spec.bgp.msgs_per_tick = static_cast<std::size_t>(jitter.uniform(20, 60));
        }
      }
      if (profile.traits.timer) {
        truth.timer = true;
        truth.timer_value = profile.timer_value;
        spec.bgp.timer_driven = true;
        spec.bgp.timer_interval = profile.timer_value;
        spec.bgp.msgs_per_tick = profile.msgs_per_tick;
      }
      // Transient impairments: present in SOME of the router's transfers,
      // which is what stretches the slow ones relative to its fastest.
      if (profile.traits.local_loss && jitter.chance(0.6)) {
        truth.local_loss = true;
        spec.down_fwd.queue_packets = static_cast<std::size_t>(jitter.uniform(6, 12));
        spec.down_fwd.rate_bytes_per_sec = jitter.uniform(1'000'000, 3'000'000);
        spec.sender_tcp.initial_cwnd_segments = 40;
      }
      if (profile.traits.net_loss && jitter.chance(0.6)) {
        truth.net_loss = true;
        spec.up_fwd.random_loss = jitter.uniform_real(0.005, cfg.net_loss_max);
      }
      if (profile.traits.slow_collector && jitter.chance(0.5)) {
        truth.slow_collector = true;
        spec.receiver_tcp.recv_buf_capacity =
            std::min<std::uint32_t>(cfg.recv_window, 8 * 1024);
        spec.collector.read_interval = from_millis(jitter.uniform(100, 250));
        spec.collector.read_chunk = static_cast<std::size_t>(jitter.uniform(4, 8)) * 1024;
      }
      if (profile.traits.probe_bug && truth.slow_collector) {
        truth.probe_bug = true;
        spec.sender_tcp.zero_window_probe_bug = true;
        spec.receiver_tcp.recv_buf_capacity = 4 * 1024;
        spec.collector.read_chunk = 2 * 1024;
      }

      const auto session = world.add_session(spec, messages);
      world.start_session(session, 0);
      world.run_until(900 * kMicrosPerSec);

      TransferRecord rec;
      rec.router = router;
      rec.transfer_index = xfer;
      rec.truth = truth;
      rec.sender_finished = world.sender(session).finished_sending();
      const PcapFile trace = world.take_trace();
      rec.trace_packets = trace.records.size();
      for (const PcapRecord& p : trace.records) rec.trace_bytes += p.data.size();
      result.total_packets += rec.trace_packets;
      result.total_bytes += rec.trace_bytes;

      TraceAnalysis ta = analyze_trace(trace, opts);
      if (ta.results.empty()) continue;
      rec.analysis = std::move(ta.results[0]);
      result.transfers.push_back(std::move(rec));
    }
  }
  return result;
}

FleetConfig isp_a1_config() {
  FleetConfig cfg;
  cfg.name = "ISP_A-1 (Vendor)";
  cfg.collector = CollectorKind::kVendor;
  cfg.routers = 24;
  // The vendor bug caused frequent session resets, hence many transfers.
  cfg.transfers_min = 4;
  cfg.transfers_max = 10;
  cfg.seed = 0xA1;
  cfg.p_timer = 0.6;  // vendor routers: timer pacing prevalent
  cfg.timer_msgs_min = 50;  // big batches per tick: quick transfers overall
  cfg.timer_msgs_max = 120;
  cfg.p_slow_collector = 0.35;  // the ISP_A collectors were often loaded
  cfg.p_probe_bug = 0.08;
  return cfg;
}

FleetConfig isp_a2_config() {
  FleetConfig cfg;
  cfg.name = "ISP_A-2 (Quagga)";
  cfg.collector = CollectorKind::kQuagga;
  cfg.routers = 27;
  cfg.transfers_min = 2;
  cfg.transfers_max = 5;
  cfg.seed = 0xA2;
  cfg.p_timer = 0.45;
  // The ISP_A collectors failed from time to time and were often loaded:
  // receiver-side limits are common in this dataset (§IV-A).
  cfg.p_slow_collector = 0.5;
  return cfg;
}

FleetConfig rv_config() {
  FleetConfig cfg;
  cfg.name = "RouteViews";
  cfg.collector = CollectorKind::kVendor;
  cfg.routers = 20;  // scaled from 59 peers
  cfg.transfers_min = 2;
  cfg.transfers_max = 4;
  cfg.ebgp = true;
  cfg.recv_window = 16 * 1024;  // the paper's RouteViews setting
  cfg.sender_min_rto = kMicrosPerSec;
  cfg.sender_rto_backoff = 3.0;  // "backs off to seconds after 2-3 timeouts"
  cfg.seed = 0x57;
  cfg.p_timer = 0.3;
  cfg.p_net_loss = 0.55;  // wide-area paths: loss is pervasive, and every
                          // loss leaves the transfer cwnd-bound for many
                          // RTTs (the paper's dominant RV sender factor)
  cfg.net_loss_max = 0.08;  // bursts bad enough to lose retransmissions too,
                            // escalating the RTO (the paper's 31 s episodes)
  cfg.p_slow_collector = 0.1;
  return cfg;
}

}  // namespace tdat
