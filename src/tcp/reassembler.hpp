// In-order byte-stream reconstruction from TCP segments, tolerating
// out-of-order delivery, retranssmission overlap, and duplication. This is
// what lets pcap2bgp (§II-A, Table VI) extract BGP messages from a raw
// packet trace when no MRT archive exists.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "tcp/seq.hpp"
#include "util/time.hpp"

namespace tdat {

// A contiguous run of stream bytes that became deliverable. `ts` is the
// capture time of the packet whose arrival completed delivery (i.e. when a
// receiver reading the socket could first have seen these bytes).
struct StreamChunk {
  std::int64_t stream_begin = 0;
  std::vector<std::uint8_t> bytes;
  Micros ts = 0;
};

class Reassembler {
 public:
  // `anchor` is the sequence number of stream offset 0 (ISN+1 when the SYN
  // is known, else the first data segment's seq).
  explicit Reassembler(std::uint32_t anchor) : unwrap_(anchor) {}

  // Feeds one segment; returns the chunks that became contiguous with the
  // delivered prefix (possibly none, possibly several buffered ones).
  [[nodiscard]] std::vector<StreamChunk> feed(std::uint32_t seq,
                                              std::span<const std::uint8_t> payload,
                                              Micros ts);

  // Next stream offset the reassembler is waiting for.
  [[nodiscard]] std::int64_t next_expected() const { return next_; }
  // Bytes buffered above the contiguous prefix (sequence holes pending).
  [[nodiscard]] std::size_t buffered_bytes() const;

 private:
  SeqUnwrapper unwrap_;
  std::int64_t next_ = 0;
  std::map<std::int64_t, std::vector<std::uint8_t>> pending_;  // begin -> bytes
};

}  // namespace tdat
