// In-order byte-stream reconstruction from TCP segments, tolerating
// out-of-order delivery, retranssmission overlap, and duplication. This is
// what lets pcap2bgp (§II-A, Table VI) extract BGP messages from a raw
// packet trace when no MRT archive exists.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tcp/seq.hpp"
#include "util/time.hpp"

namespace tdat {

// A contiguous run of stream bytes that became deliverable. `ts` is the
// capture time of the packet whose arrival completed delivery (i.e. when a
// receiver reading the socket could first have seen these bytes).
struct StreamChunk {
  std::int64_t stream_begin = 0;
  std::vector<std::uint8_t> bytes;
  Micros ts = 0;
};

class Reassembler {
 public:
  // `anchor` is the sequence number of stream offset 0 (ISN+1 when the SYN
  // is known, else the first data segment's seq).
  explicit Reassembler(std::uint32_t anchor) : unwrap_(anchor) {}
  // Default-constructed for embedding in reusable scratch; call reset()
  // before feeding.
  Reassembler() : unwrap_(0) {}

  // Rewinds to a fresh stream anchored at `anchor`. The pending list keeps
  // its capacity across resets; steady-state reuse is allocation-free as
  // long as segments arrive in order.
  void reset(std::uint32_t anchor) {
    unwrap_ = SeqUnwrapper(anchor);
    next_ = 0;
    pending_.clear();
  }

  // Feeds one segment; returns the chunks that became contiguous with the
  // delivered prefix (possibly none, possibly several buffered ones).
  [[nodiscard]] std::vector<StreamChunk> feed(std::uint32_t seq,
                                              std::span<const std::uint8_t> payload,
                                              Micros ts);

  // Streaming form: deliverable bytes are handed to `sink` as
  // sink(stream_begin, std::span<const std::uint8_t>, ts), possibly several
  // times per call. For the dominant in-order case the span borrows directly
  // from `payload` (valid only during the call) — no buffering, no copy, no
  // allocation. Only out-of-order bytes are staged in the pending list.
  template <typename Sink>
  void feed(std::uint32_t seq, std::span<const std::uint8_t> payload, Micros ts,
            Sink&& sink) {
    if (payload.empty()) return;
    std::int64_t begin = unwrap_.unwrap(seq);
    const std::int64_t end = begin + static_cast<std::int64_t>(payload.size());

    // Drop what we already delivered.
    if (begin < next_) {
      const std::int64_t skip = std::min(next_ - begin, end - begin);
      payload = payload.subspan(static_cast<std::size_t>(skip));
      begin += skip;
    }
    if (begin >= end) return;  // pure duplicate of delivered data

    if (begin == next_ && (pending_.empty() || end <= pending_.front().begin)) {
      // Fast path: extends the delivered prefix without touching buffered
      // bytes. Hand the payload through and drain any now-adjacent segments.
      next_ = end;
      sink(begin, payload, ts);
    } else {
      buffer_segment(begin, end, payload);
    }
    while (!pending_.empty() && pending_.front().begin == next_) {
      PendingRange node = std::move(pending_.front());
      pending_.erase(pending_.begin());
      next_ += static_cast<std::int64_t>(node.bytes.size());
      sink(node.begin, std::span<const std::uint8_t>(node.bytes), ts);
    }
  }

  // Next stream offset the reassembler is waiting for.
  [[nodiscard]] std::int64_t next_expected() const { return next_; }
  // Bytes buffered above the contiguous prefix (sequence holes pending).
  [[nodiscard]] std::size_t buffered_bytes() const;

 private:
  // One buffered out-of-order run. The list is kept sorted by `begin` and
  // non-overlapping; it was a std::map, but sequence holes are few and
  // short-lived (a hole per in-flight loss burst), so a flat sorted vector
  // beats the node store: ordered scans are contiguous, the front-drain in
  // feed() shifts a handful of cheap-to-move elements, and a drained list
  // frees no nodes.
  struct PendingRange {
    std::int64_t begin = 0;
    std::vector<std::uint8_t> bytes;
  };

  // Slow path: trims [begin, end) against buffered segments and stages the
  // genuinely new bytes in `pending_`.
  void buffer_segment(std::int64_t begin, std::int64_t end,
                      std::span<const std::uint8_t> payload);

  SeqUnwrapper unwrap_;
  std::int64_t next_ = 0;
  std::vector<PendingRange> pending_;  // sorted by begin, non-overlapping
};

}  // namespace tdat
