#include "tcp/flights.hpp"

#include "util/assert.hpp"

namespace tdat {

std::vector<Flight> group_flights(std::span<const FlightItem> items,
                                  Micros gap_threshold) {
  std::vector<Flight> out;
  group_flights_into(items, gap_threshold, out);
  return out;
}

void group_flights_into(std::span<const FlightItem> items, Micros gap_threshold,
                        std::vector<Flight>& out) {
  TDAT_EXPECTS(gap_threshold >= 0);
  out.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) TDAT_EXPECTS(items[i].ts >= items[i - 1].ts);
    if (out.empty() || items[i].ts - items[out.back().last].ts > gap_threshold) {
      out.push_back(Flight{i, i, items[i].ts, items[i].ts, 0, 0});
    }
    Flight& f = out.back();
    f.last = i;
    f.end = items[i].ts;
    ++f.packets;
    f.bytes += items[i].bytes;
  }
}

}  // namespace tdat
