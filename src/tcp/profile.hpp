// Connection-level profile: the information the paper extracts with a
// patched tcptrace (§III-B) — start/end, RTT estimate, MSS, window scale,
// maximum advertised window, and per-direction volume counters.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "tcp/connection.hpp"

namespace tdat {

struct DirStats {
  std::uint64_t packets = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t pure_acks = 0;
  bool saw_syn = false;
  std::uint32_t isn = 0;  // sequence number on the first packet seen
  std::optional<std::uint16_t> mss;          // announced by this side
  std::optional<std::uint8_t> window_scale;  // announced by this side
  std::uint32_t max_window_scaled = 0;       // advertised *by* this side
};

struct ConnectionProfile {
  Micros start = 0;
  Micros end = 0;
  // Direction carrying the bulk of the payload: Sender -> Receiver in the
  // paper's terminology. Defaults to kAToB for empty connections.
  Dir data_dir = Dir::kAToB;
  DirStats a_to_b;
  DirStats b_to_a;

  // RTT spread of the three-way handshake as seen at the sniffer (first SYN
  // to the handshake-completing ACK): a full-path RTT regardless of sniffer
  // position. Absent if no complete handshake was captured.
  std::optional<Micros> rtt_handshake;
  // Minimum data->covering-ACK delay in the data direction: the
  // sniffer-to-receiver-and-back component (d1 of Fig. 12).
  std::optional<Micros> rtt_min_sample;
  // Timestamp-echo RTT (RFC 1323 / Veal et al. [31]): minimum delay from a
  // reverse-direction TSval to the data-direction segment echoing it in
  // TSecr — the sniffer-to-sender-and-back loop (d2), available even when
  // the handshake was not captured. Requires the connection to negotiate
  // timestamps.
  std::optional<Micros> rtt_timestamp_sample;

  [[nodiscard]] const DirStats& sender() const {
    return data_dir == Dir::kAToB ? a_to_b : b_to_a;
  }
  [[nodiscard]] const DirStats& receiver() const {
    return data_dir == Dir::kAToB ? b_to_a : a_to_b;
  }

  // Best available RTT estimate; falls back to 1 ms when the capture shows
  // neither a handshake, nor timestamp echoes, nor a usable data/ACK pair.
  [[nodiscard]] Micros rtt() const {
    if (rtt_handshake) return *rtt_handshake;
    if (rtt_timestamp_sample) return *rtt_timestamp_sample;
    if (rtt_min_sample) return *rtt_min_sample;
    return kMicrosPerMilli;
  }

  // Effective sender MSS (announced by the receiver side, per RFC 793 the
  // announcement constrains the peer); 1460 when not announced.
  [[nodiscard]] std::uint16_t mss() const {
    const auto& announced = receiver().mss;
    return announced.value_or(1460);
  }

  // Largest receive window advertised by the receiver, after scaling.
  [[nodiscard]] std::uint32_t max_advertised_window() const {
    return receiver().max_window_scaled;
  }
};

// Reusable working memory for compute_profile. The timestamp-echo table is
// a sorted flat window (live entries at [tsval_head, end)) instead of a
// node-based map, so a warm scratch makes repeated profiling allocation-free.
struct ProfileScratch {
  std::vector<std::pair<std::uint32_t, Micros>> tsval_first_seen;
  std::size_t tsval_head = 0;

  void reset() noexcept {
    tsval_first_seen.clear();
    tsval_head = 0;
  }
};

[[nodiscard]] ConnectionProfile compute_profile(const Connection& conn);
[[nodiscard]] ConnectionProfile compute_profile(const Connection& conn,
                                                ProfileScratch& scratch);

}  // namespace tdat
