// 32-bit TCP sequence-number arithmetic (mod 2^32, RFC 793) and an unwrapper
// that lifts wire sequence numbers onto a monotone 64-bit line so the rest of
// the analyzer can use ordinary comparisons and RangeSets over byte offsets.
#pragma once

#include <cstdint>

namespace tdat {

// a < b in sequence space (serial number arithmetic).
[[nodiscard]] constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
[[nodiscard]] constexpr bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
[[nodiscard]] constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
[[nodiscard]] constexpr bool seq_ge(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}
// Signed distance from b to a; positive when a is ahead of b.
[[nodiscard]] constexpr std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

// Lifts successive 32-bit sequence numbers of one flow onto a 64-bit line,
// choosing for each input the representative closest to the previous one.
// Tolerates out-of-order arrivals and retransmissions up to +/-2^31 of the
// current position, which any real TCP flow satisfies.
class SeqUnwrapper {
 public:
  // `isn` anchors offset 0 (typically the flow's initial sequence number).
  explicit SeqUnwrapper(std::uint32_t isn) : base_(isn), last_(0) {}

  [[nodiscard]] std::int64_t unwrap(std::uint32_t seq) {
    const auto delta =
        static_cast<std::int32_t>(seq - static_cast<std::uint32_t>(
                                            static_cast<std::uint64_t>(last_) + base_));
    last_ += delta;
    return last_;
  }

 private:
  std::uint32_t base_;
  std::int64_t last_;
};

}  // namespace tdat
