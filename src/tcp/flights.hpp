// Flight grouping: packets sent back-to-back form a flight; a new flight
// starts when the inter-arrival gap exceeds a threshold. The paper groups
// both data packets and ACKs this way (after Zhang et al. [38]); ACK flights
// are the unit the ACK-shifting step moves as a whole (§III-B1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace tdat {

struct FlightItem {
  Micros ts = 0;
  std::uint64_t bytes = 0;
  std::size_t ref = 0;  // caller-side index (e.g. packet index)
};

struct Flight {
  std::size_t first = 0;  // index of the first item (into the input span)
  std::size_t last = 0;   // index of the last item, inclusive
  Micros start = 0;
  Micros end = 0;  // timestamp of the last item
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

// Items must be in non-decreasing timestamp order. A gap strictly greater
// than `gap_threshold` starts a new flight.
[[nodiscard]] std::vector<Flight> group_flights(std::span<const FlightItem> items,
                                                Micros gap_threshold);

// Same, writing into a reused buffer (`out` is cleared, capacity kept).
void group_flights_into(std::span<const FlightItem> items, Micros gap_threshold,
                        std::vector<Flight>& out);

}  // namespace tdat
