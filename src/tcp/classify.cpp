#include "tcp/classify.hpp"

#include <algorithm>
#include <map>

#include "tcp/seq.hpp"
#include "timerange/range_set.hpp"
#include "util/assert.hpp"

namespace tdat {

const char* to_string(DataLabel label) {
  switch (label) {
    case DataLabel::kInOrder: return "in-order";
    case DataLabel::kRetransmitDownstream: return "retx-downstream";
    case DataLabel::kRetransmitUpstream: return "retx-upstream";
    case DataLabel::kReordering: return "reordering";
    case DataLabel::kDuplicate: return "duplicate";
  }
  return "?";
}

std::size_t ClassifiedFlow::count(DataLabel label) const {
  return static_cast<std::size_t>(
      std::count_if(data.begin(), data.end(),
                    [&](const LabeledDataPacket& p) { return p.label == label; }));
}

namespace {

struct Hole {
  std::int64_t end = 0;
  Micros created = 0;
};

struct Segment {
  std::int64_t end = 0;
  Micros first_seen = 0;
};

}  // namespace

ClassifiedFlow classify_data_packets(const Connection& conn, Dir data_dir,
                                     const ClassifyOptions& opts) {
  ClassifiedFlow flow;
  flow.dir = data_dir;

  // Anchor stream offset 0 at ISN+1 when the SYN was captured, else at the
  // first data byte seen.
  bool anchored = false;
  std::uint32_t anchor = 0;
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) != data_dir) continue;
    if (pkt.tcp.flags.syn) {
      anchor = pkt.tcp.seq + 1;
      anchored = true;
      break;
    }
    if (pkt.has_payload() && !anchored) {
      anchor = pkt.tcp.seq;
      anchored = true;
      // keep scanning: a SYN later in capture order would be unusual, stop.
      break;
    }
  }
  if (!anchored) return flow;
  flow.anchor_seq = anchor;
  flow.has_anchor = true;

  SeqUnwrapper unwrap(anchor);
  RangeSet captured;                    // stream bytes seen at the sniffer
  std::map<std::int64_t, Hole> holes;   // begin -> hole
  std::map<std::int64_t, Segment> first_tx;  // begin -> first capture of new bytes
  std::int64_t max_end = 0;

  // Finds the first-capture time of any byte in [b, e).
  auto original_ts = [&](std::int64_t b, std::int64_t e) -> Micros {
    auto it = first_tx.upper_bound(b);
    if (it != first_tx.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > b) return prev->second.first_seen;
    }
    if (it != first_tx.end() && it->first < e) return it->second.first_seen;
    return -1;
  };

  for (std::size_t i = 0; i < conn.packets.size(); ++i) {
    const DecodedPacket& pkt = conn.packets[i];
    if (packet_dir(conn.key, pkt) != data_dir || !pkt.has_payload()) continue;

    LabeledDataPacket lp;
    lp.packet_index = i;
    lp.ts = pkt.ts;
    lp.stream_begin = unwrap.unwrap(pkt.tcp.seq);
    lp.stream_end = lp.stream_begin + static_cast<std::int64_t>(pkt.payload_len);
    lp.loss_begin = pkt.ts;
    const std::int64_t b = lp.stream_begin;
    const std::int64_t e = lp.stream_end;

    // Bytes of this segment the sniffer has never captured, split at the
    // stream frontier: below it they fill a hole, above they are new data.
    const RangeSet uncaptured = captured.complement({b, e});
    const Micros hole_bytes = uncaptured.size_within({b, std::min(e, max_end)});

    if (b >= max_end) {
      lp.label = DataLabel::kInOrder;
      if (b > max_end) {
        // Sequence hole: the bytes [max_end, b) are missing at the sniffer.
        holes[max_end] = Hole{b, pkt.ts};
      }
    } else if (hole_bytes == 0) {
      // Every below-frontier byte was captured before: a retransmission the
      // sniffer has already relayed downstream.
      const Micros orig = original_ts(b, e);
      const bool exact_dup =
          orig >= 0 && pkt.ts - orig <= opts.duplicate_window;
      lp.label = exact_dup ? DataLabel::kDuplicate : DataLabel::kRetransmitDownstream;
      lp.loss_begin = orig >= 0 ? orig : pkt.ts;
    } else {
      // Fills a sequence hole: reordering or upstream-loss retransmission.
      // Remove the filled portion from every overlapped hole (splitting
      // where needed) and date the fill from the oldest overlapped hole.
      Micros hole_created = -1;
      auto it = holes.lower_bound(b);
      if (it != holes.begin() && std::prev(it)->second.end > b) --it;
      std::vector<std::pair<std::int64_t, Hole>> overlapped;
      while (it != holes.end() && it->first < e) {
        if (it->second.end > b) overlapped.emplace_back(it->first, it->second);
        ++it;
      }
      for (const auto& [hb, h] : overlapped) {
        holes.erase(hb);
        if (hole_created < 0 || h.created < hole_created) hole_created = h.created;
        if (hb < b) holes[hb] = Hole{b, h.created};
        if (h.end > e) holes[e] = Hole{h.end, h.created};
      }
      if (hole_created >= 0 && pkt.ts - hole_created < opts.reorder_threshold) {
        lp.label = DataLabel::kReordering;
      } else {
        lp.label = DataLabel::kRetransmitUpstream;
      }
      lp.loss_begin = hole_created >= 0 ? hole_created : pkt.ts;
    }

    // Record first capture of the genuinely new bytes.
    for (const TimeRange& r : uncaptured.ranges()) {
      first_tx[r.begin] = Segment{r.end, pkt.ts};
    }
    captured.insert(b, e);
    max_end = std::max(max_end, e);
    flow.data.push_back(lp);
  }
  flow.stream_length = max_end;
  return flow;
}

}  // namespace tdat
