#include "tcp/classify.hpp"

#include <algorithm>
#include <map>

#include "tcp/seq.hpp"
#include "timerange/range_set.hpp"
#include "util/assert.hpp"

namespace tdat {

const char* to_string(DataLabel label) {
  switch (label) {
    case DataLabel::kInOrder: return "in-order";
    case DataLabel::kRetransmitDownstream: return "retx-downstream";
    case DataLabel::kRetransmitUpstream: return "retx-upstream";
    case DataLabel::kReordering: return "reordering";
    case DataLabel::kDuplicate: return "duplicate";
  }
  return "?";
}

std::size_t ClassifiedFlow::count(DataLabel label) const {
  return static_cast<std::size_t>(
      std::count_if(data.begin(), data.end(),
                    [&](const LabeledDataPacket& p) { return p.label == label; }));
}

ClassifiedFlow classify_data_packets(const Connection& conn, Dir data_dir,
                                     const ClassifyOptions& opts) {
  ClassifyScratch scratch;
  ClassifiedFlow flow;
  classify_data_packets(conn, data_dir, opts, scratch, flow);
  return flow;
}

void classify_data_packets(const Connection& conn, Dir data_dir,
                           const ClassifyOptions& opts,
                           ClassifyScratch& scratch, ClassifiedFlow& out) {
  using StreamHole = ClassifyScratch::StreamHole;
  using StreamSegment = ClassifyScratch::StreamSegment;

  out.dir = data_dir;
  out.data.clear();
  out.stream_length = 0;
  out.anchor_seq = 0;
  out.has_anchor = false;

  // Anchor stream offset 0 at ISN+1 when the SYN was captured, else at the
  // first data byte seen.
  bool anchored = false;
  std::uint32_t anchor = 0;
  for (const DecodedPacket& pkt : conn.packets) {
    if (packet_dir(conn.key, pkt) != data_dir) continue;
    if (pkt.tcp.flags.syn) {
      anchor = pkt.tcp.seq + 1;
      anchored = true;
      break;
    }
    if (pkt.has_payload() && !anchored) {
      anchor = pkt.tcp.seq;
      anchored = true;
      // keep scanning: a SYN later in capture order would be unusual, stop.
      break;
    }
  }
  if (!anchored) return;
  out.anchor_seq = anchor;
  out.has_anchor = true;

  SeqUnwrapper unwrap(anchor);
  RangeSet& captured = scratch.captured;  // stream bytes seen at the sniffer
  captured.clear();
  auto& holes = scratch.holes;        // sorted by begin, disjoint
  auto& first_tx = scratch.first_tx;  // first capture of new bytes, sorted
  holes.clear();
  first_tx.clear();
  std::int64_t max_end = 0;

  const auto seg_by_begin = [](const StreamSegment& s, std::int64_t v) {
    return s.begin < v;
  };

  // Finds the first-capture time of any byte in [b, e).
  auto original_ts = [&](std::int64_t b, std::int64_t e) -> Micros {
    auto it = std::upper_bound(
        first_tx.begin(), first_tx.end(), b,
        [](std::int64_t v, const StreamSegment& s) { return v < s.begin; });
    if (it != first_tx.begin()) {
      auto prev = std::prev(it);
      if (prev->end > b) return prev->first_seen;
    }
    if (it != first_tx.end() && it->begin < e) return it->first_seen;
    return -1;
  };

  for (std::size_t i = 0; i < conn.packets.size(); ++i) {
    const DecodedPacket& pkt = conn.packets[i];
    if (packet_dir(conn.key, pkt) != data_dir || !pkt.has_payload()) continue;

    LabeledDataPacket lp;
    lp.packet_index = i;
    lp.ts = pkt.ts;
    lp.stream_begin = unwrap.unwrap(pkt.tcp.seq);
    lp.stream_end = lp.stream_begin + static_cast<std::int64_t>(pkt.payload_len);
    lp.loss_begin = pkt.ts;
    const std::int64_t b = lp.stream_begin;
    const std::int64_t e = lp.stream_end;

    // Bytes of this segment the sniffer has never captured, split at the
    // stream frontier: below it they fill a hole, above they are new data.
    const RangeSet& uncaptured = scratch.uncaptured;
    captured.complement_into({b, e}, scratch.uncaptured);
    const Micros hole_bytes = uncaptured.size_within({b, std::min(e, max_end)});

    if (b >= max_end) {
      lp.label = DataLabel::kInOrder;
      if (b > max_end) {
        // Sequence hole: the bytes [max_end, b) are missing at the sniffer.
        // New holes start at the frontier, past every existing hole, so the
        // vector stays sorted by appending.
        holes.push_back(StreamHole{max_end, b, pkt.ts});
      }
    } else if (hole_bytes == 0) {
      // Every below-frontier byte was captured before: a retransmission the
      // sniffer has already relayed downstream.
      const Micros orig = original_ts(b, e);
      const bool exact_dup =
          orig >= 0 && pkt.ts - orig <= opts.duplicate_window;
      lp.label = exact_dup ? DataLabel::kDuplicate : DataLabel::kRetransmitDownstream;
      lp.loss_begin = orig >= 0 ? orig : pkt.ts;
    } else {
      // Fills a sequence hole: reordering or upstream-loss retransmission.
      // Remove the filled portion from every overlapped hole (splitting
      // where needed) and date the fill from the oldest overlapped hole.
      Micros hole_created = -1;
      auto first = std::lower_bound(
          holes.begin(), holes.end(), b,
          [](const StreamHole& h, std::int64_t v) { return h.end <= v; });
      auto last = first;
      scratch.overlapped.clear();
      while (last != holes.end() && last->begin < e) {
        scratch.overlapped.push_back(*last);
        ++last;
      }
      auto pos = holes.erase(first, last);
      for (const StreamHole& h : scratch.overlapped) {
        if (hole_created < 0 || h.created < hole_created) hole_created = h.created;
      }
      // Only the first overlapped hole can stick out below b and only the
      // last above e; reinsert the trimmed pieces in order.
      if (!scratch.overlapped.empty()) {
        const StreamHole& lead = scratch.overlapped.front();
        if (lead.begin < b) {
          pos = holes.insert(pos, StreamHole{lead.begin, b, lead.created});
          ++pos;
        }
        const StreamHole& tail = scratch.overlapped.back();
        if (tail.end > e) {
          holes.insert(pos, StreamHole{e, tail.end, tail.created});
        }
      }
      if (hole_created >= 0 && pkt.ts - hole_created < opts.reorder_threshold) {
        lp.label = DataLabel::kReordering;
      } else {
        lp.label = DataLabel::kRetransmitUpstream;
      }
      lp.loss_begin = hole_created >= 0 ? hole_created : pkt.ts;
    }

    // Record first capture of the genuinely new bytes. Beyond-frontier
    // ranges append; hole fills splice into the middle.
    for (const TimeRange& r : uncaptured.ranges()) {
      auto it = std::lower_bound(first_tx.begin(), first_tx.end(), r.begin,
                                 seg_by_begin);
      if (it != first_tx.end() && it->begin == r.begin) {
        *it = StreamSegment{r.begin, r.end, pkt.ts};
      } else {
        first_tx.insert(it, StreamSegment{r.begin, r.end, pkt.ts});
      }
    }
    captured.insert(b, e);
    max_end = std::max(max_end, e);
    out.data.push_back(lp);
  }
  out.stream_length = max_end;
}

}  // namespace tdat
