#include "tcp/connection.hpp"

#include <map>

#include "util/bytes.hpp"

namespace tdat {

std::string ConnKey::to_string() const {
  return ipv4_to_string(ip_a) + ":" + std::to_string(port_a) + " <-> " +
         ipv4_to_string(ip_b) + ":" + std::to_string(port_b);
}

ConnKey make_conn_key(const DecodedPacket& pkt) {
  const auto src = std::pair(pkt.ip.src, pkt.tcp.src_port);
  const auto dst = std::pair(pkt.ip.dst, pkt.tcp.dst_port);
  ConnKey key;
  const auto& [a, b] = src < dst ? std::pair(src, dst) : std::pair(dst, src);
  key.ip_a = a.first;
  key.port_a = a.second;
  key.ip_b = b.first;
  key.port_b = b.second;
  return key;
}

Dir packet_dir(const ConnKey& key, const DecodedPacket& pkt) {
  return (pkt.ip.src == key.ip_a && pkt.tcp.src_port == key.port_a)
             ? Dir::kAToB
             : Dir::kBToA;
}

std::vector<Connection> split_connections(const std::vector<DecodedPacket>& trace) {
  std::vector<Connection> out;
  struct Active {
    std::size_t conn_index;
    bool saw_data_or_close = false;
  };
  std::map<ConnKey, Active> active;

  for (const DecodedPacket& pkt : trace) {
    const ConnKey key = make_conn_key(pkt);
    auto it = active.find(key);
    const bool fresh_syn = pkt.tcp.flags.syn && !pkt.tcp.flags.ack;
    if (it == active.end() ||
        (fresh_syn && out[it->second.conn_index].packets.size() > 1 &&
         it->second.saw_data_or_close)) {
      Connection conn;
      conn.key = key;
      out.push_back(std::move(conn));
      it = active.insert_or_assign(key, Active{out.size() - 1, false}).first;
    }
    if (pkt.has_payload() || pkt.tcp.flags.fin || pkt.tcp.flags.rst) {
      it->second.saw_data_or_close = true;
    }
    out[it->second.conn_index].packets.push_back(pkt);
  }
  return out;
}

}  // namespace tdat
