#include "tcp/connection.hpp"

#include <map>

#include "util/bytes.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tdat {

std::string ConnKey::to_string() const {
  return ipv4_to_string(ip_a) + ":" + std::to_string(port_a) + " <-> " +
         ipv4_to_string(ip_b) + ":" + std::to_string(port_b);
}

ConnKey make_conn_key(const DecodedPacket& pkt) {
  const auto src = std::pair(pkt.ip.src, pkt.tcp.src_port);
  const auto dst = std::pair(pkt.ip.dst, pkt.tcp.dst_port);
  ConnKey key;
  const auto& [a, b] = src < dst ? std::pair(src, dst) : std::pair(dst, src);
  key.ip_a = a.first;
  key.port_a = a.second;
  key.ip_b = b.first;
  key.port_b = b.second;
  return key;
}

Dir packet_dir(const ConnKey& key, const DecodedPacket& pkt) {
  return (pkt.ip.src == key.ip_a && pkt.tcp.src_port == key.port_a)
             ? Dir::kAToB
             : Dir::kBToA;
}

void ConnectionDemux::add(DecodedPacket pkt) {
  // Registry lookups are one-time; per-packet cost is a relaxed inc.
  static Counter& packets_seen = metrics().counter("demux.packets");
  static Counter& conns_opened = metrics().counter("demux.connections_opened");
  packets_seen.inc();
  const ConnKey key = make_conn_key(pkt);
  auto it = active_.find(key);
  const bool fresh_syn = pkt.tcp.flags.syn && !pkt.tcp.flags.ack;
  if (it == active_.end() ||
      (fresh_syn && conns_[it->second.conn_index].packets.size() > 1 &&
       it->second.saw_data_or_close)) {
    Connection conn;
    conn.key = key;
    conns_.push_back(std::move(conn));
    it = active_.insert_or_assign(key, Active{conns_.size() - 1, false}).first;
    conns_opened.inc();
    TDAT_TRACE_INSTANT("demux.new_connection", "demux");
  }
  if (pkt.has_payload() || pkt.tcp.flags.fin || pkt.tcp.flags.rst) {
    it->second.saw_data_or_close = true;
  }
  Connection& conn = conns_[it->second.conn_index];
  if (!conn.packets.empty() && pkt.ts < conn.packets.back().ts) {
    // Damaged or multi-queue captures can step time backwards mid-connection
    // (FaultMode::kReorderRecords models both). Per-connection analysis
    // requires monotonic time, so clamp to the previous packet's timestamp —
    // hostile input must degrade the one connection, not abort the run.
    static Counter& ts_clamped = metrics().counter("demux.ts_clamped");
    ts_clamped.inc();
    pkt.ts = conn.packets.back().ts;
  }
  conn.packets.push_back(std::move(pkt));
}

std::vector<Connection> ConnectionDemux::take() {
  TDAT_TRACE_SPAN("demux.take", "demux", "connections",
                  static_cast<std::int64_t>(conns_.size()));
  active_.clear();
  return std::move(conns_);
}

std::vector<Connection> split_connections(const std::vector<DecodedPacket>& trace) {
  ConnectionDemux demux;
  for (const DecodedPacket& pkt : trace) demux.add(pkt);
  return demux.take();
}

}  // namespace tdat
