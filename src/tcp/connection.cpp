#include "tcp/connection.hpp"

#include <utility>

#include "util/bytes.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tdat {
namespace {

// Initial table size: 64 slots ≈ 32 concurrent connections before the first
// grow, plenty for typical per-collector session counts.
constexpr std::size_t kInitialSlots = 64;

}  // namespace

std::string ConnKey::to_string() const {
  return ipv4_to_string(ip_a) + ":" + std::to_string(port_a) + " <-> " +
         ipv4_to_string(ip_b) + ":" + std::to_string(port_b);
}

ConnKey make_conn_key(const DecodedPacket& pkt) {
  const auto src = std::pair(pkt.ip.src, pkt.tcp.src_port);
  const auto dst = std::pair(pkt.ip.dst, pkt.tcp.dst_port);
  ConnKey key;
  const auto& [a, b] = src < dst ? std::pair(src, dst) : std::pair(dst, src);
  key.ip_a = a.first;
  key.port_a = a.second;
  key.ip_b = b.first;
  key.port_b = b.second;
  return key;
}

std::uint64_t conn_key_hash(const ConnKey& key) {
  // splitmix64-style finalize over the packed key halves; the Fibonacci
  // constant keeps sequential ports/addresses from clustering probe runs.
  std::uint64_t h = (static_cast<std::uint64_t>(key.ip_a) << 32) | key.ip_b;
  h ^= (static_cast<std::uint64_t>(key.port_a) << 16 | key.port_b) +
       0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return h;
}

Dir packet_dir(const ConnKey& key, const DecodedPacket& pkt) {
  return (pkt.ip.src == key.ip_a && pkt.tcp.src_port == key.port_a)
             ? Dir::kAToB
             : Dir::kBToA;
}

std::size_t ConnectionDemux::probe(const ConnKey& key) {
  if (slots_.empty()) slots_.resize(kInitialSlots);
  if ((occupied_ + 1) * 2 > slots_.size()) grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(conn_key_hash(key)) & mask;
  while (slots_[i].used && !(slots_[i].key == key)) i = (i + 1) & mask;
  return i;
}

void ConnectionDemux::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (Slot& s : old) {
    if (!s.used) continue;
    std::size_t i = static_cast<std::size_t>(conn_key_hash(s.key)) & mask;
    while (slots_[i].used) i = (i + 1) & mask;
    slots_[i] = std::move(s);
  }
}

std::size_t ConnectionDemux::add_indexed(DecodedPacket pkt) {
  // Registry lookups are one-time; per-packet cost is a relaxed inc.
  static Counter& packets_seen = metrics().counter("demux.packets");
  static Counter& conns_opened = metrics().counter("demux.connections_opened");
  packets_seen.inc();
  const ConnKey key = make_conn_key(pkt);
  const std::size_t i = probe(key);
  Slot& slot = slots_[i];
  const bool fresh_syn = pkt.tcp.flags.syn && !pkt.tcp.flags.ack;
  if (!slot.used || (fresh_syn && conns_[slot.conn_index].packets.size() > 1 &&
                     slot.saw_data_or_close)) {
    Connection conn;
    conn.key = key;
    conns_.push_back(std::move(conn));
    occupied_ += !slot.used;
    slot.key = key;
    slot.conn_index = static_cast<std::uint32_t>(conns_.size() - 1);
    slot.saw_data_or_close = false;
    slot.used = true;
    conns_opened.inc();
    TDAT_TRACE_INSTANT("demux.new_connection", "demux");
  }
  if (pkt.has_payload() || pkt.tcp.flags.fin || pkt.tcp.flags.rst) {
    slot.saw_data_or_close = true;
  }
  Connection& conn = conns_[slot.conn_index];
  if (!conn.packets.empty() && pkt.ts < conn.packets.back().ts) {
    // Damaged or multi-queue captures can step time backwards mid-connection
    // (FaultMode::kReorderRecords models both). Per-connection analysis
    // requires monotonic time, so clamp to the previous packet's timestamp —
    // hostile input must degrade the one connection, not abort the run.
    static Counter& ts_clamped = metrics().counter("demux.ts_clamped");
    ts_clamped.inc();
    pkt.ts = conn.packets.back().ts;
  }
  conn.packets.push_back(std::move(pkt));
  return slot.conn_index;
}

void ConnectionDemux::forget(std::size_t conn_index) {
  if (slots_.empty() || conn_index >= conns_.size()) return;
  const ConnKey key = conns_[conn_index].key;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(conn_key_hash(key)) & mask;
  while (slots_[i].used && !(slots_[i].key == key)) i = (i + 1) & mask;
  if (!slots_[i].used) return;  // key already gone
  // If a fresh SYN already remapped the key onto a newer connection, the
  // older one holds no slot — nothing to forget.
  if (slots_[i].conn_index != conn_index) return;
  // Backward-shift deletion: walk the probe run after the hole and slide
  // every entry that would become unreachable (its home position lies at or
  // before the hole) down into it. No tombstones, so probe() stays a pure
  // used/match scan.
  std::size_t hole = i;
  std::size_t j = (i + 1) & mask;
  while (slots_[j].used) {
    const std::size_t home =
        static_cast<std::size_t>(conn_key_hash(slots_[j].key)) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      slots_[hole] = std::move(slots_[j]);
      slots_[j] = Slot{};
      hole = j;
    }
    j = (j + 1) & mask;
  }
  slots_[hole] = Slot{};
  --occupied_;
}

std::vector<Connection> ConnectionDemux::take() {
  TDAT_TRACE_SPAN("demux.take", "demux", "connections",
                  static_cast<std::int64_t>(conns_.size()));
  // Wipe slots but keep the array: the next run re-probes a zeroed table of
  // the same capacity instead of re-allocating.
  for (Slot& s : slots_) s = Slot{};
  occupied_ = 0;
  return std::move(conns_);
}

std::vector<Connection> split_connections(const std::vector<DecodedPacket>& trace) {
  ConnectionDemux demux;
  for (const DecodedPacket& pkt : trace) demux.add(pkt);
  return demux.take();
}

}  // namespace tdat
