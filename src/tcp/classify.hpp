// Data-packet labeling, including the upstream/downstream loss attribution
// of §II-B2 (after Jaiswal et al. [17]).
//
// The sniffer sits between the upstream path (Sender->Sniffer) and the
// downstream path (Sniffer->Receiver). For each data packet of the data
// direction we decide, from the sniffer's view:
//
//  - in-order:    extends the highest stream byte captured so far. If it
//                 leaves a sequence hole behind it, the hole marks packets
//                 missing on the upstream path.
//  - downstream retransmission: carries bytes the sniffer has ALREADY
//                 captured — the original reached the sniffer but was not
//                 acknowledged in time, so it (or its ACK) was lost on the
//                 downstream path, i.e. locally to the receiver.
//  - upstream retransmission: fills a sequence hole long after the hole
//                 appeared — the original never reached the sniffer.
//  - reordering:  fills a hole almost immediately; in-network reordering,
//                 not loss (the filter the paper applies from [17]).
//  - duplicate:   an exact copy arriving within a tiny window of its twin
//                 (in-network duplication).
#pragma once

#include <cstdint>
#include <vector>

#include "tcp/connection.hpp"
#include "timerange/range_set.hpp"
#include "util/time.hpp"

namespace tdat {

enum class DataLabel : std::uint8_t {
  kInOrder,
  kRetransmitDownstream,
  kRetransmitUpstream,
  kReordering,
  kDuplicate,
};

[[nodiscard]] const char* to_string(DataLabel label);

struct LabeledDataPacket {
  std::size_t packet_index = 0;  // index into Connection::packets
  Micros ts = 0;
  // Unwrapped stream byte offsets, 0 = first payload byte of the flow.
  std::int64_t stream_begin = 0;
  std::int64_t stream_end = 0;
  DataLabel label = DataLabel::kInOrder;
  // For retransmissions: when the loss episode began. Downstream: the
  // original transmission's capture time. Upstream: when the sequence hole
  // appeared at the sniffer. Otherwise equals ts.
  Micros loss_begin = 0;

  [[nodiscard]] std::int64_t length() const { return stream_end - stream_begin; }
};

struct ClassifiedFlow {
  Dir dir = Dir::kAToB;
  std::vector<LabeledDataPacket> data;  // every payload-carrying packet, in capture order
  std::int64_t stream_length = 0;       // highest stream byte seen
  // Wire sequence number of stream offset 0 (ISN+1); lets callers convert
  // ACK numbers from the reverse direction onto the same stream offsets.
  std::uint32_t anchor_seq = 0;
  bool has_anchor = false;

  [[nodiscard]] std::size_t count(DataLabel label) const;
};

struct ClassifyOptions {
  // Hole fills arriving sooner than this after the hole appeared are
  // classified as in-network reordering rather than upstream loss. The
  // default (set by the caller from the profile) should be a fraction of
  // RTT: a genuine retransmission needs at least ~1 RTT (fast retransmit)
  // to arrive, reordered packets arrive within a link-jitter timescale.
  Micros reorder_threshold = 2 * kMicrosPerMilli;
  // Exact copies within this window are network duplicates, not
  // retransmissions.
  Micros duplicate_window = 500;
};

[[nodiscard]] ClassifiedFlow classify_data_packets(const Connection& conn,
                                                   Dir data_dir,
                                                   const ClassifyOptions& opts);

// Reusable working memory for classify_data_packets: the captured-byte
// coverage, the per-packet uncaptured scratch, and the hole/first-capture
// tables kept as sorted flat vectors instead of node-based maps. Contents
// between calls are unspecified; a warm scratch makes classification
// allocation-free.
struct ClassifyScratch {
  struct StreamHole {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    Micros created = 0;
  };
  struct StreamSegment {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    Micros first_seen = 0;
  };

  RangeSet captured;
  RangeSet uncaptured;
  std::vector<StreamHole> holes;        // sorted by begin, disjoint
  std::vector<StreamSegment> first_tx;  // sorted by begin, disjoint
  std::vector<StreamHole> overlapped;
};

// Scratch-reusing form: `out` is cleared (keeping capacity) and refilled.
void classify_data_packets(const Connection& conn, Dir data_dir,
                           const ClassifyOptions& opts,
                           ClassifyScratch& scratch, ClassifiedFlow& out);

}  // namespace tdat
