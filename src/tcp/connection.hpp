// Connection extraction: splits a decoded trace into TCP connections and
// assigns each packet a direction. A new SYN on a (addr, port) pair that
// already has a finished connection starts a new connection — BGP sessions
// reset and re-establish on the same endpoint pair all the time (§II).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pcap/packet.hpp"

namespace tdat {

// Canonical connection key: endpoint A is the numerically smaller
// (ip, port) pair so both directions map to the same key.
struct ConnKey {
  std::uint32_t ip_a = 0;
  std::uint16_t port_a = 0;
  std::uint32_t ip_b = 0;
  std::uint16_t port_b = 0;

  friend bool operator==(const ConnKey&, const ConnKey&) = default;
  friend auto operator<=>(const ConnKey&, const ConnKey&) = default;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ConnKey make_conn_key(const DecodedPacket& pkt);

enum class Dir : std::uint8_t { kAToB, kBToA };

[[nodiscard]] Dir packet_dir(const ConnKey& key, const DecodedPacket& pkt);
[[nodiscard]] constexpr Dir reverse(Dir d) {
  return d == Dir::kAToB ? Dir::kBToA : Dir::kAToB;
}

struct Connection {
  ConnKey key;
  // All packets of the connection in capture order; DecodedPacket::index
  // still refers to the position in the original trace.
  std::vector<DecodedPacket> packets;

  [[nodiscard]] Micros start_time() const {
    return packets.empty() ? 0 : packets.front().ts;
  }
  [[nodiscard]] Micros end_time() const {
    return packets.empty() ? 0 : packets.back().ts;
  }
};

// Incremental connection demultiplexer: accepts packets one at a time in
// capture order, so the streaming ingest path can demux while the trace is
// still being read. A SYN (without ACK) seen on a key whose current
// connection already carried data or a FIN/RST starts a new connection on
// that key. split_connections is the batch wrapper over this.
class ConnectionDemux {
 public:
  void add(DecodedPacket pkt);

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }

  // Finishes demultiplexing and yields the connections in first-seen order.
  // The demux is empty afterwards and may be reused.
  [[nodiscard]] std::vector<Connection> take();

 private:
  struct Active {
    std::size_t conn_index;
    bool saw_data_or_close = false;
  };
  std::vector<Connection> conns_;
  std::map<ConnKey, Active> active_;
};

// Splits trace packets (in capture order) into connections.
[[nodiscard]] std::vector<Connection> split_connections(
    const std::vector<DecodedPacket>& trace);

}  // namespace tdat
