// Connection extraction: splits a decoded trace into TCP connections and
// assigns each packet a direction. A new SYN on a (addr, port) pair that
// already has a finished connection starts a new connection — BGP sessions
// reset and re-establish on the same endpoint pair all the time (§II).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcap/packet.hpp"

namespace tdat {

// Canonical connection key: endpoint A is the numerically smaller
// (ip, port) pair so both directions map to the same key.
struct ConnKey {
  std::uint32_t ip_a = 0;
  std::uint16_t port_a = 0;
  std::uint32_t ip_b = 0;
  std::uint16_t port_b = 0;

  friend bool operator==(const ConnKey&, const ConnKey&) = default;
  friend auto operator<=>(const ConnKey&, const ConnKey&) = default;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ConnKey make_conn_key(const DecodedPacket& pkt);

// 64-bit mix of the canonical key. Shared between the demux table below and
// the parallel ingest pipeline's demux sharding (core/ingest_pipeline.cpp):
// both sides using the same hash keeps a connection's packets on one shard
// AND well-spread inside that shard's table (the shard takes the high bits,
// the table index the low bits).
[[nodiscard]] std::uint64_t conn_key_hash(const ConnKey& key);

enum class Dir : std::uint8_t { kAToB, kBToA };

[[nodiscard]] Dir packet_dir(const ConnKey& key, const DecodedPacket& pkt);
[[nodiscard]] constexpr Dir reverse(Dir d) {
  return d == Dir::kAToB ? Dir::kBToA : Dir::kAToB;
}

struct Connection {
  ConnKey key;
  // All packets of the connection in capture order; DecodedPacket::index
  // still refers to the position in the original trace.
  std::vector<DecodedPacket> packets;

  [[nodiscard]] Micros start_time() const {
    return packets.empty() ? 0 : packets.front().ts;
  }
  [[nodiscard]] Micros end_time() const {
    return packets.empty() ? 0 : packets.back().ts;
  }
};

// Incremental connection demultiplexer: accepts packets one at a time in
// capture order, so the streaming ingest path can demux while the trace is
// still being read. A SYN (without ACK) seen on a key whose current
// connection already carried data or a FIN/RST starts a new connection on
// that key. split_connections is the batch wrapper over this.
//
// The key -> connection lookup is an open-addressing linear-probe table in
// the style of bgp::PrefixSet (power-of-two capacity, load factor < 1/2,
// Fibonacci-mixed hash): the lookup is the hottest non-analysis operation in
// the pipeline and a node-based map was paying a pointer chase plus an
// allocation per connection for it. Batch runs never delete keys — take()
// clears the whole table — so probing needs no tombstones; the live
// engine's per-key forget() uses backward-shift deletion to keep it that
// way.
class ConnectionDemux {
 public:
  void add(DecodedPacket pkt) { (void)add_indexed(std::move(pkt)); }

  // Like add(), returning the index (into connections()/take() order) of
  // the connection the packet joined — the live engine uses it to mark
  // connections dirty for incremental re-analysis.
  std::size_t add_indexed(DecodedPacket pkt);

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }

  // In-place view of the connections in first-seen order, for callers that
  // analyze incrementally without draining the demux. Indices are stable
  // for the demux's lifetime (forget() never erases from this vector).
  [[nodiscard]] std::vector<Connection>& connections() { return conns_; }
  [[nodiscard]] const std::vector<Connection>& connections() const {
    return conns_;
  }

  // Drops the key -> connection mapping for conns_[conn_index] (a no-op if
  // the key has already been remapped to a newer connection). The
  // Connection object itself stays in place — indices held by callers
  // remain valid — but the next packet on that key opens a brand-new
  // connection, exactly as if the key had never been seen. This is how the
  // live engine garbage-collects idle sessions without renumbering.
  void forget(std::size_t conn_index);

  // Finishes demultiplexing and yields the connections in first-seen order.
  // The demux is empty afterwards and may be reused; the slot array keeps
  // its capacity, so steady-state reuse does not allocate.
  [[nodiscard]] std::vector<Connection> take();

 private:
  struct Slot {
    ConnKey key;
    std::uint32_t conn_index = 0;
    bool saw_data_or_close = false;
    bool used = false;
  };

  // Probes for `key`; returns the index of its slot (used) or of the empty
  // slot where it belongs (unused). Grows first when at the load limit.
  [[nodiscard]] std::size_t probe(const ConnKey& key);
  void grow();

  std::vector<Connection> conns_;
  std::vector<Slot> slots_;     // power-of-two size; empty until first add
  std::size_t occupied_ = 0;    // used slots, governs the load-factor grow
};

// Splits trace packets (in capture order) into connections.
[[nodiscard]] std::vector<Connection> split_connections(
    const std::vector<DecodedPacket>& trace);

}  // namespace tdat
