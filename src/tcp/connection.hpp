// Connection extraction: splits a decoded trace into TCP connections and
// assigns each packet a direction. A new SYN on a (addr, port) pair that
// already has a finished connection starts a new connection — BGP sessions
// reset and re-establish on the same endpoint pair all the time (§II).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcap/packet.hpp"

namespace tdat {

// Canonical connection key: endpoint A is the numerically smaller
// (ip, port) pair so both directions map to the same key.
struct ConnKey {
  std::uint32_t ip_a = 0;
  std::uint16_t port_a = 0;
  std::uint32_t ip_b = 0;
  std::uint16_t port_b = 0;

  friend bool operator==(const ConnKey&, const ConnKey&) = default;
  friend auto operator<=>(const ConnKey&, const ConnKey&) = default;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] ConnKey make_conn_key(const DecodedPacket& pkt);

enum class Dir : std::uint8_t { kAToB, kBToA };

[[nodiscard]] Dir packet_dir(const ConnKey& key, const DecodedPacket& pkt);
[[nodiscard]] constexpr Dir reverse(Dir d) {
  return d == Dir::kAToB ? Dir::kBToA : Dir::kAToB;
}

struct Connection {
  ConnKey key;
  // All packets of the connection in capture order; DecodedPacket::index
  // still refers to the position in the original trace.
  std::vector<DecodedPacket> packets;

  [[nodiscard]] Micros start_time() const {
    return packets.empty() ? 0 : packets.front().ts;
  }
  [[nodiscard]] Micros end_time() const {
    return packets.empty() ? 0 : packets.back().ts;
  }
};

// Splits trace packets (in capture order) into connections. A SYN (without
// ACK) seen on a key whose current connection already carried data or a
// FIN/RST starts a new connection on that key.
[[nodiscard]] std::vector<Connection> split_connections(
    const std::vector<DecodedPacket>& trace);

}  // namespace tdat
