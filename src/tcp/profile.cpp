#include "tcp/profile.hpp"

#include <algorithm>

#include "tcp/seq.hpp"

namespace tdat {
namespace {

// Scales a raw advertised window by this side's announced shift count.
// Windows on SYN segments are never scaled (RFC 1323).
std::uint32_t scaled_window(const DecodedPacket& pkt,
                            const std::optional<std::uint8_t>& wscale) {
  if (pkt.tcp.flags.syn) return pkt.tcp.window;
  return static_cast<std::uint32_t>(pkt.tcp.window)
         << (wscale ? *wscale : 0);
}

}  // namespace

ConnectionProfile compute_profile(const Connection& conn) {
  ProfileScratch scratch;
  return compute_profile(conn, scratch);
}

ConnectionProfile compute_profile(const Connection& conn,
                                  ProfileScratch& scratch) {
  ConnectionProfile p;
  if (conn.packets.empty()) return p;
  p.start = conn.packets.front().ts;
  p.end = conn.packets.back().ts;

  // First pass: option announcements, so windows can be scaled properly.
  for (const DecodedPacket& pkt : conn.packets) {
    DirStats& dir = packet_dir(conn.key, pkt) == Dir::kAToB ? p.a_to_b : p.b_to_a;
    if (pkt.tcp.flags.syn && !dir.saw_syn) {
      dir.saw_syn = true;
      dir.mss = pkt.tcp.mss;
      dir.window_scale = pkt.tcp.window_scale;
    }
  }
  // Window scaling is only in effect if both sides announced it.
  const bool scaling_on = p.a_to_b.window_scale && p.b_to_a.window_scale;
  if (!scaling_on) {
    p.a_to_b.window_scale.reset();
    p.b_to_a.window_scale.reset();
  }

  bool first_a = true;
  bool first_b = true;
  Micros syn_ts = -1;
  std::uint32_t syn_ack_expected = 0;  // ack value that completes the handshake
  bool saw_syn_ack = false;

  for (const DecodedPacket& pkt : conn.packets) {
    const Dir d = packet_dir(conn.key, pkt);
    DirStats& dir = d == Dir::kAToB ? p.a_to_b : p.b_to_a;
    bool& first = d == Dir::kAToB ? first_a : first_b;
    if (first) {
      dir.isn = pkt.tcp.seq;
      first = false;
    }
    ++dir.packets;
    if (pkt.has_payload()) {
      ++dir.data_packets;
      dir.payload_bytes += pkt.payload_len;
    } else if (pkt.tcp.flags.ack && !pkt.tcp.flags.syn && !pkt.tcp.flags.fin &&
               !pkt.tcp.flags.rst) {
      ++dir.pure_acks;
    }
    dir.max_window_scaled =
        std::max(dir.max_window_scaled, scaled_window(pkt, dir.window_scale));

    // Handshake RTT: SYN -> SYN/ACK -> handshake-completing ACK.
    if (pkt.tcp.flags.syn && !pkt.tcp.flags.ack && syn_ts < 0) {
      syn_ts = pkt.ts;
    } else if (pkt.tcp.flags.syn && pkt.tcp.flags.ack && !saw_syn_ack) {
      saw_syn_ack = true;
      syn_ack_expected = pkt.tcp.seq + 1;
    } else if (saw_syn_ack && !p.rtt_handshake && pkt.tcp.flags.ack &&
               !pkt.tcp.flags.syn && syn_ts >= 0 &&
               seq_ge(pkt.tcp.ack, syn_ack_expected)) {
      p.rtt_handshake = pkt.ts - syn_ts;
    }
  }

  p.data_dir = p.a_to_b.payload_bytes >= p.b_to_a.payload_bytes ? Dir::kAToB
                                                                : Dir::kBToA;

  // Timestamp-echo RTT samples (Veal et al.): the receiver stamps TSval on
  // its ACKs; the sender echoes the newest one in TSecr on its next data.
  // The gap from a TSval's first appearance to its first echo bounds the
  // sniffer->sender->sniffer loop.
  {
    scratch.reset();
    auto& tab = scratch.tsval_first_seen;
    const auto live_begin = [&] {
      return tab.begin() + static_cast<std::ptrdiff_t>(scratch.tsval_head);
    };
    const auto by_key = [](const std::pair<std::uint32_t, Micros>& e,
                           std::uint32_t k) { return e.first < k; };
    for (const DecodedPacket& pkt : conn.packets) {
      const Dir d = packet_dir(conn.key, pkt);
      if (d != p.data_dir && pkt.tcp.ts_val) {
        // First sighting wins; TSvals are near-monotonic so this is almost
        // always an append at the end of the live window.
        const std::uint32_t key = *pkt.tcp.ts_val;
        auto it = std::lower_bound(live_begin(), tab.end(), key, by_key);
        if (it == tab.end() || it->first != key) tab.insert(it, {key, pkt.ts});
      } else if (d == p.data_dir && pkt.has_payload() && pkt.tcp.ts_ecr) {
        auto it = std::lower_bound(live_begin(), tab.end(), *pkt.tcp.ts_ecr,
                                   by_key);
        if (it == tab.end() || it->first != *pkt.tcp.ts_ecr) continue;
        const Micros sample = pkt.ts - it->second;
        if (sample > 0 && (!p.rtt_timestamp_sample ||
                           sample < *p.rtt_timestamp_sample)) {
          p.rtt_timestamp_sample = sample;
        }
        // Echoed values never yield tighter samples later; drop them by
        // advancing the live-window head (no erase, no node churn).
        scratch.tsval_head =
            static_cast<std::size_t>(it - tab.begin()) + 1;
      }
    }
  }

  // Minimum data -> covering-ACK sample in the data direction. One
  // outstanding probe at a time is enough for a minimum.
  bool probe_armed = false;
  Micros probe_ts = 0;
  std::uint32_t probe_end_seq = 0;
  for (const DecodedPacket& pkt : conn.packets) {
    const Dir d = packet_dir(conn.key, pkt);
    if (d == p.data_dir && pkt.has_payload()) {
      if (!probe_armed) {
        probe_armed = true;
        probe_ts = pkt.ts;
        probe_end_seq = pkt.tcp.seq + static_cast<std::uint32_t>(pkt.payload_len);
      }
    } else if (d != p.data_dir && pkt.tcp.flags.ack && probe_armed &&
               seq_ge(pkt.tcp.ack, probe_end_seq)) {
      const Micros sample = pkt.ts - probe_ts;
      if (sample > 0 && (!p.rtt_min_sample || sample < *p.rtt_min_sample)) {
        p.rtt_min_sample = sample;
      }
      probe_armed = false;
    }
  }
  return p;
}

}  // namespace tdat
