#include "tcp/reassembler.hpp"

#include <algorithm>

namespace tdat {

std::vector<StreamChunk> Reassembler::feed(std::uint32_t seq,
                                           std::span<const std::uint8_t> payload,
                                           Micros ts) {
  std::vector<StreamChunk> out;
  feed(seq, payload, ts,
       [&out](std::int64_t begin, std::span<const std::uint8_t> bytes,
              Micros chunk_ts) {
         StreamChunk chunk;
         chunk.stream_begin = begin;
         chunk.bytes.assign(bytes.begin(), bytes.end());
         chunk.ts = chunk_ts;
         out.push_back(std::move(chunk));
       });
  return out;
}

void Reassembler::buffer_segment(std::int64_t begin, std::int64_t end,
                                 std::span<const std::uint8_t> payload) {
  // Trim against buffered segments so `pending_` stays non-overlapping.
  // Anything re-received identically is discarded byte-for-byte.
  while (begin < end) {
    // Find the buffered segment at or after `begin` and the one before it.
    auto it = pending_.upper_bound(begin);
    std::int64_t covered_until = begin;
    if (it != pending_.begin()) {
      auto prev = std::prev(it);
      const std::int64_t prev_end =
          prev->first + static_cast<std::int64_t>(prev->second.size());
      covered_until = std::max(covered_until, prev_end);
    }
    if (covered_until > begin) {
      // Prefix already buffered: skip it.
      const std::int64_t skip = std::min(covered_until, end) - begin;
      payload = payload.subspan(static_cast<std::size_t>(skip));
      begin += skip;
      continue;
    }
    // New bytes from `begin` up to the next buffered segment (or `end`).
    const std::int64_t stop = it != pending_.end() ? std::min(it->first, end) : end;
    pending_[begin] = std::vector<std::uint8_t>(
        payload.begin(), payload.begin() + (stop - begin));
    payload = payload.subspan(static_cast<std::size_t>(stop - begin));
    begin = stop;
  }
}

std::size_t Reassembler::buffered_bytes() const {
  std::size_t n = 0;
  for (const auto& [_, bytes] : pending_) n += bytes.size();
  return n;
}

}  // namespace tdat
