#include "tcp/reassembler.hpp"

#include <algorithm>

namespace tdat {

std::vector<StreamChunk> Reassembler::feed(std::uint32_t seq,
                                           std::span<const std::uint8_t> payload,
                                           Micros ts) {
  std::vector<StreamChunk> out;
  feed(seq, payload, ts,
       [&out](std::int64_t begin, std::span<const std::uint8_t> bytes,
              Micros chunk_ts) {
         StreamChunk chunk;
         chunk.stream_begin = begin;
         chunk.bytes.assign(bytes.begin(), bytes.end());
         chunk.ts = chunk_ts;
         out.push_back(std::move(chunk));
       });
  return out;
}

void Reassembler::buffer_segment(std::int64_t begin, std::int64_t end,
                                 std::span<const std::uint8_t> payload) {
  // Trim against buffered segments so `pending_` stays non-overlapping.
  // Anything re-received identically is discarded byte-for-byte.
  while (begin < end) {
    // Find the buffered segment starting after `begin`; its predecessor (if
    // any) is the only one that can cover `begin`.
    auto it = std::upper_bound(
        pending_.begin(), pending_.end(), begin,
        [](std::int64_t b, const PendingRange& r) { return b < r.begin; });
    std::int64_t covered_until = begin;
    if (it != pending_.begin()) {
      const PendingRange& prev = *(it - 1);
      covered_until = std::max(
          covered_until, prev.begin + static_cast<std::int64_t>(prev.bytes.size()));
    }
    if (covered_until > begin) {
      // Prefix already buffered: skip it.
      const std::int64_t skip = std::min(covered_until, end) - begin;
      payload = payload.subspan(static_cast<std::size_t>(skip));
      begin += skip;
      continue;
    }
    // New bytes from `begin` up to the next buffered segment (or `end`).
    const std::int64_t stop = it != pending_.end() ? std::min(it->begin, end) : end;
    PendingRange range;
    range.begin = begin;
    range.bytes.assign(payload.begin(), payload.begin() + (stop - begin));
    it = pending_.insert(it, std::move(range));
    payload = payload.subspan(static_cast<std::size_t>(stop - begin));
    begin = stop;
  }
}

std::size_t Reassembler::buffered_bytes() const {
  std::size_t n = 0;
  for (const auto& range : pending_) n += range.bytes.size();
  return n;
}

}  // namespace tdat
