// tdat — the analysis tool suite (paper Table VI) as one binary.
//
//   tdat analyze  <trace.pcap> [--location receiver|sender|middle] [--json]
//                 [--jobs N] [--stats|--quiet-stats]
//                 [--trace FILE] [--metrics FILE]
//                 [--log-level LEVEL] [--progress]
//                 [--series NAME]...          T-DAT delay analysis
//   tdat pcap2mrt <trace.pcap> <out.mrt>      reconstruct BGP msgs -> MRT
//   tdat mrtcat   <archive.mrt> [-n N]        print an MRT archive
//   tdat timeseq  <trace.pcap> [conn-index]   time-sequence plot (BGPlot)
//   tdat simulate <scenario> <out.pcap>       generate a demo capture
//                 scenarios: baseline timer loss slow-collector window
//                            narrow-pipe probe-bug
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "bgp/table_gen.hpp"
#include "core/detectors.hpp"
#include "core/export.hpp"
#include "core/locate.hpp"
#include "core/series_names.hpp"
#include "core/timeseq.hpp"
#include "sim/world.hpp"
#include "timerange/render.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace {

using namespace tdat;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tdat analyze  <trace.pcap> [--location receiver|sender|middle]"
               " [--json] [--series NAME]...\n"
               "                [--jobs N] [--stats|--quiet-stats]"
               "   (default jobs: hardware threads, or $TDAT_JOBS)\n"
               "                [--trace FILE]     write a Chrome trace_event"
               " JSON (chrome://tracing, Perfetto)\n"
               "                [--metrics FILE]   write the metrics registry"
               " snapshot as JSON\n"
               "                [--log-level L]    trace|debug|info|warn|error"
               "|off (default warn)\n"
               "                [--progress]       live progress ticker on"
               " stderr\n"
               "  tdat pcap2mrt <trace.pcap> <out.mrt>\n"
               "  tdat mrtcat   <archive.mrt> [-n N]\n"
               "  tdat timeseq  <trace.pcap> [conn-index]\n"
               "  tdat simulate <scenario> <out.pcap> [--sessions N]\n"
               "      scenarios: baseline timer loss slow-collector window"
               " narrow-pipe probe-bug\n");
  return 2;
}

Result<PcapFile> load(const char* path) { return read_pcap_file(path); }

// Live pipeline ticker for `analyze --progress`: a sampling thread reads the
// global metric counters the pipeline already maintains (no analyzer hooks
// needed) and repaints one stderr line. On a TTY the line is redrawn in
// place a few times a second; piped to a file it appends a plain line every
// couple of seconds instead, so logs stay diff-friendly.
class ProgressTicker {
 public:
  ProgressTicker() {
#if defined(__unix__) || defined(__APPLE__)
    tty_ = isatty(fileno(stderr)) != 0;
#endif
    thread_ = std::thread([this] { run(); });
  }

  ~ProgressTicker() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    if (drew_ && tty_) std::fprintf(stderr, "\r\033[K");
  }

  ProgressTicker(const ProgressTicker&) = delete;
  ProgressTicker& operator=(const ProgressTicker&) = delete;

 private:
  void run() {
    MetricsRegistry& reg = metrics();
    Counter& records = reg.counter("pcap.records");
    Counter& bytes = reg.counter("pcap.bytes");
    Counter& done = reg.counter("analyze.connections_done");
    const auto interval =
        std::chrono::milliseconds(tty_ ? 150 : 2000);
    auto next_paint = std::chrono::steady_clock::now() + interval;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      if (std::chrono::steady_clock::now() < next_paint) continue;
      next_paint += interval;
      paint(records.value(), bytes.value(), done.value());
    }
  }

  void paint(std::uint64_t records, std::uint64_t bytes, std::uint64_t done) {
    if (!tty_ && records == last_records_ && done == last_done_) return;
    last_records_ = records;
    last_done_ = done;
    drew_ = true;
    std::fprintf(stderr,
                 "%s[tdat] %llu records (%.1f MB) read, %llu connections"
                 " analyzed%s",
                 tty_ ? "\r\033[K" : "",
                 static_cast<unsigned long long>(records),
                 static_cast<double>(bytes) / 1e6,
                 static_cast<unsigned long long>(done), tty_ ? "" : "\n");
    if (tty_) std::fflush(stderr);
  }

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool tty_ = false;
  bool drew_ = false;
  std::uint64_t last_records_ = 0;
  std::uint64_t last_done_ = 0;
};

// Writes the process-wide metrics snapshot to `path` as one JSON object.
bool write_metrics_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = metrics().to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 1) return usage();
  AnalyzerOptions opts;
  opts.jobs = 0;  // default: hardware concurrency (or $TDAT_JOBS)
  bool json = false;
  bool show_stats = true;
  bool progress = false;
  std::string trace_path;
  std::string metrics_path;
  std::vector<std::string> wanted_series;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--location") == 0 && i + 1 < argc) {
      const std::string where = argv[++i];
      if (where == "sender") opts.location = SnifferLocation::kNearSender;
      else if (where == "middle") opts.location = SnifferLocation::kMiddle;
      else opts.location = SnifferLocation::kNearReceiver;
    } else if (std::strcmp(argv[i], "--series") == 0 && i + 1 < argc) {
      wanted_series.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--jobs: not a number: %s\n", argv[i]);
        return 2;
      }
      opts.jobs = static_cast<std::size_t>(v);  // 0 = hardware default
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else if (std::strcmp(argv[i], "--quiet-stats") == 0) {
      show_stats = false;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      if (!set_log_level(std::string_view(argv[++i]))) {
        std::fprintf(stderr, "--log-level: unknown level: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress = true;
    } else {
      return usage();
    }
  }
  // Observability sidecars never touch the analysis output: traces and
  // metrics go to their own files, progress goes to stderr, so a run with
  // these flags is byte-identical on stdout to a run without them.
  if (!trace_path.empty()) trace_start();
  // Streaming ingest: chunked read + decode + demux, then per-connection
  // analysis on the pool. Output is identical to the in-memory path.
  Result<TraceAnalysis> analyzed = [&] {
    std::optional<ProgressTicker> ticker;
    if (progress) ticker.emplace();
    return analyze_file(argv[0], opts);
  }();
  int rc = 0;
  if (!trace_path.empty() && !trace_stop(trace_path)) {
    std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
    rc = 1;
  }
  if (!metrics_path.empty() && !write_metrics_file(metrics_path)) {
    std::fprintf(stderr, "cannot write metrics to %s\n", metrics_path.c_str());
    rc = 1;
  }
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.error().c_str());
    return 1;
  }
  const TraceAnalysis& analysis = analyzed.value();
  if (json) std::printf("[");
  bool first = true;
  for (const ConnectionAnalysis& conn : analysis.results) {
    if (json) {
      if (!first) std::printf(",");
      std::printf("%s", analysis_to_json(conn).c_str());
      first = false;
      continue;
    }
    const auto& raw = analysis.connections[conn.conn_index];
    std::printf("connection %s\n", raw.key.to_string().c_str());
    const auto where = infer_sniffer_location(raw, conn.profile);
    if (where.confident) {
      std::printf("  inferred sniffer position: %s\n",
                  where.location == SnifferLocation::kNearReceiver ? "receiver side"
                  : where.location == SnifferLocation::kNearSender ? "sender side"
                                                                   : "mid-path");
    }
    if (conn.transfer.empty()) {
      std::printf("  no table transfer found\n");
      continue;
    }
    std::printf("  transfer %.2fs, %zu updates, %zu prefixes\n",
                to_seconds(conn.transfer_duration()), conn.mct.update_count,
                conn.mct.prefix_count);
    std::printf("  (Rs, Rr, Rn) = (%.2f, %.2f, %.2f)\n",
                conn.report.ratio(FactorGroup::kSender),
                conn.report.ratio(FactorGroup::kReceiver),
                conn.report.ratio(FactorGroup::kNetwork));
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      if (conn.report.factor_ratio[f] < 0.01) continue;
      std::printf("    %-26s %5.1f%%\n", to_string(static_cast<Factor>(f)),
                  100.0 * conn.report.factor_ratio[f]);
    }
    const auto timer = detect_timer_gaps(conn.series(), conn.transfer);
    if (timer.detected) {
      std::printf("  ! pacing timer ~%.0f ms (%zu gaps, %.1fs)\n",
                  to_millis(timer.timer), timer.gap_count,
                  to_seconds(timer.introduced_delay));
    }
    const auto losses = detect_consecutive_losses(conn.series(), conn.transfer);
    if (losses.detected) {
      std::printf("  ! consecutive losses: worst run %zu, %.1fs\n",
                  losses.max_consecutive, to_seconds(losses.introduced_delay));
    }
    const auto bug = detect_zero_ack_bug(conn.series(), conn.transfer);
    if (bug.detected) {
      std::printf("  ! zero-window probe bug suspected (%zu losses during"
                  " closed windows)\n",
                  bug.occurrences);
    }
    const auto pause = detect_peer_group_pause(conn);
    if (pause.detected) {
      std::printf("  ! keepalive-only pause %.1fs: possible peer-group"
                  " blocking\n",
                  to_seconds(pause.blocked_time));
    }
    const auto voids = detect_capture_voids(raw, conn.profile);
    if (voids.detected) {
      std::printf("  ! capture voids: %llu bytes never captured\n",
                  static_cast<unsigned long long>(voids.missing_bytes));
    }
    for (const std::string& name : wanted_series) {
      if (!conn.series().has(name)) {
        std::printf("  (no series named %s)\n", name.c_str());
        continue;
      }
      std::printf("%s\n", render_series({&conn.series().get(name)},
                                        conn.transfer)
                              .c_str());
    }
  }
  if (json) std::printf("]\n");
  if (show_stats) {
    const PipelineStats& st = analysis.stats;
    std::fprintf(stderr,
                 "[tdat] %llu records (%.2f MB) -> %llu packets -> %llu"
                 " connections in %.3fs (ingest %.3fs + analyze %.3fs,"
                 " jobs=%zu): %.1f MB/s, %.0f pkt/s, %.2f conn/s\n",
                 static_cast<unsigned long long>(st.records),
                 static_cast<double>(st.bytes_ingested) / 1e6,
                 static_cast<unsigned long long>(st.packets),
                 static_cast<unsigned long long>(st.connections),
                 to_seconds(st.total_wall), to_seconds(st.ingest_wall),
                 to_seconds(st.analyze_wall), st.jobs,
                 st.bytes_per_sec() / 1e6, st.packets_per_sec(),
                 st.connections_per_sec());
  }
  return rc;
}

int cmd_pcap2mrt(int argc, char** argv) {
  if (argc != 2) return usage();
  const auto trace = load(argv[0]);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.error().c_str());
    return 1;
  }
  std::vector<MrtRecord> all;
  for (const Connection& conn : split_connections(decode_pcap(trace.value()))) {
    const auto profile = compute_profile(conn);
    const auto result = extract_bgp_messages(conn, profile.data_dir);
    const auto records = to_mrt_records(conn, profile.data_dir, result.messages);
    std::printf("%s: %zu messages\n", conn.key.to_string().c_str(),
                records.size());
    all.insert(all.end(), records.begin(), records.end());
  }
  if (!write_mrt_file(argv[1], all)) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("wrote %zu MRT records to %s\n", all.size(), argv[1]);
  return 0;
}

int cmd_mrtcat(int argc, char** argv) {
  if (argc < 1) return usage();
  long limit = -1;
  if (argc >= 3 && std::strcmp(argv[1], "-n") == 0) limit = std::atol(argv[2]);
  const auto records = read_mrt_file(argv[0]);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.error().c_str());
    return 1;
  }
  long shown = 0;
  for (const MrtRecord& rec : records.value()) {
    if (limit >= 0 && shown++ >= limit) break;
    const auto msg = rec.parse();
    std::printf("%lld  AS%u -> AS%u  ", static_cast<long long>(rec.ts / kMicrosPerSec),
                rec.peer_as, rec.local_as);
    if (!msg.ok()) {
      std::printf("(unparseable: %s)\n", msg.error().c_str());
      continue;
    }
    std::printf("%s", to_string(msg.value().type()));
    if (const BgpUpdate* upd = msg.value().as_update()) {
      std::printf("  nlri=%zu withdrawn=%zu", upd->nlri.size(),
                  upd->withdrawn.size());
      if (!upd->nlri.empty()) {
        std::printf("  %s  path %s", upd->nlri.front().to_string().c_str(),
                    upd->attrs.as_path_string().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("(%zu records total)\n", records.value().size());
  return 0;
}

int cmd_timeseq(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto trace = load(argv[0]);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.error().c_str());
    return 1;
  }
  const auto conns = split_connections(decode_pcap(trace.value()));
  const std::size_t index = argc >= 2 ? static_cast<std::size_t>(std::atoi(argv[1])) : 0;
  if (index >= conns.size()) {
    std::fprintf(stderr, "connection %zu of %zu not found\n", index, conns.size());
    return 1;
  }
  const auto& conn = conns[index];
  const auto profile = compute_profile(conn);
  const auto flow = classify_data_packets(conn, profile.data_dir, ClassifyOptions{});
  std::printf("%s\n", conn.key.to_string().c_str());
  std::printf("%s", render_time_sequence(
                        conn, flow, {conn.start_time(), conn.end_time() + 1})
                        .c_str());
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string scenario = argv[0];
  std::size_t sessions = 1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v < 1) {
        std::fprintf(stderr, "--sessions: need a positive count\n");
        return 2;
      }
      sessions = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  SimWorld world(12345);
  SessionSpec spec;
  if (scenario == "timer") {
    spec.bgp.timer_driven = true;
    spec.bgp.timer_interval = 200 * kMicrosPerMilli;
    spec.bgp.msgs_per_tick = 60;
  } else if (scenario == "loss") {
    spec.up_fwd.random_loss = 0.03;
  } else if (scenario == "slow-collector") {
    spec.receiver_tcp.recv_buf_capacity = 8 * 1024;
    spec.collector.read_interval = 300 * kMicrosPerMilli;
    spec.collector.read_chunk = 8 * 1024;
  } else if (scenario == "window") {
    spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    spec.up_fwd.propagation_delay = 25 * kMicrosPerMilli;
    spec.up_rev.propagation_delay = 25 * kMicrosPerMilli;
  } else if (scenario == "narrow-pipe") {
    spec.up_fwd.rate_bytes_per_sec = 100'000;
    spec.up_fwd.queue_packets = 10'000;
  } else if (scenario == "probe-bug") {
    spec.sender_tcp.zero_window_probe_bug = true;
    spec.receiver_tcp.recv_buf_capacity = 4 * 1024;
    spec.collector.read_interval = 300 * kMicrosPerMilli;
    spec.collector.read_chunk = 2 * 1024;
  } else if (scenario != "baseline") {
    return usage();
  }
  Rng rng(54321);
  TableGenConfig tg;
  tg.prefix_count = 8'000;
  // Each extra session is its own BGP peer (distinct addresses are assigned
  // by add_session), so the capture demuxes into `sessions` connections —
  // handy for exercising the parallel analysis pool.
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto s =
        world.add_session(spec, serialize_updates(generate_table(tg, rng)));
    world.start_session(s, static_cast<Micros>(i) * 10 * kMicrosPerMilli);
  }
  world.run_until(600 * kMicrosPerSec);
  const PcapFile trace = world.take_trace();
  if (!write_pcap_file(argv[1], trace)) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("wrote %zu packets (%s scenario) to %s\n", trace.records.size(),
              scenario.c_str(), argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "analyze") return cmd_analyze(argc - 2, argv + 2);
  if (cmd == "pcap2mrt") return cmd_pcap2mrt(argc - 2, argv + 2);
  if (cmd == "mrtcat") return cmd_mrtcat(argc - 2, argv + 2);
  if (cmd == "timeseq") return cmd_timeseq(argc - 2, argv + 2);
  if (cmd == "simulate") return cmd_simulate(argc - 2, argv + 2);
  return usage();
}
