// tdat — the analysis tool suite (paper Table VI) as one binary.
//
//   tdat analyze  <trace.pcap>... [--location receiver|sender|middle]
//                 [--format text|json|csv | --json] [--detectors LIST]
//                 [--jobs N] [--stats|--quiet-stats]
//                 [--trace FILE] [--metrics FILE]
//                 [--log-level LEVEL] [--progress]
//                 [--series NAME]...          T-DAT delay analysis
//   tdat passes                               list the registered passes
//   tdat pcap2mrt <trace.pcap> <out.mrt>      reconstruct BGP msgs -> MRT
//   tdat mrtcat   <archive.mrt> [-n N]        print an MRT archive
//   tdat timeseq  <trace.pcap> [conn-index]   time-sequence plot (BGPlot)
//   tdat simulate <scenario> <out.pcap>       generate a demo capture
//                 scenarios: baseline timer loss slow-collector window
//                            narrow-pipe probe-bug
//   tdat corrupt  <in.pcap> <out.pcap> --mode M [--seed S] [--count N]
//                 deterministically damage a capture (fault injection)
//   tdat metrics  <trace.pcap>...             analyze quietly, print the
//                 metrics registry in Prometheus text exposition format
//   tdat aggregate <in.tdagg>... [--output F] merge result archives, print
//                 fleet roll-ups, or diff against a baseline aggregate
//   tdat shard    <in.pcap> <outdir> [--shards N]
//                 split a capture into per-connection shards
//   tdat shard    <in.pcap> --plan [--shards N]
//                 print the zero-copy offset-run shard plan as JSON
//   tdat fleet    <trace.pcap> --workers N        multi-process analysis:
//                 plan shards, fork workers, merge streamed archives
//   tdat fleet    --connect HOST:PORT             join a remote coordinator
//   tdat watch    <growing.pcap> [--output F]     always-on incremental
//                 analysis of a capture still being written: periodic
//                 report snapshots, bounded memory, SIGTERM drains cleanly
//   tdat version                                  build identification
//
// Exit codes: 0 = clean run; 1 = analysis completed but the input had
// recoverable errors (ingest damage or quarantined connections) or a sidecar
// file could not be written (for `aggregate --diff`: regressions found);
// 2 = usage error; 3 = unreadable input.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "agg/archive.hpp"
#include "agg/rollup.hpp"
#include "agg/sink.hpp"
#include "bgp/table_gen.hpp"
#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "core/live.hpp"
#include "core/live_source.hpp"
#include "core/pass.hpp"
#include "core/report.hpp"
#include "core/series_names.hpp"
#include "core/timeseq.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/shard_plan.hpp"
#include "fleet/worker.hpp"
#include "pcap/decode.hpp"
#include "pcap/fault_injector.hpp"
#include "sim/world.hpp"
#include "util/atomic_file.hpp"
#include "util/crash_point.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"
#include "util/version.hpp"

namespace {

using namespace tdat;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tdat analyze  <trace.pcap>... [--location"
               " receiver|sender|middle] [--series NAME]...\n"
               "                (several files, or a directory of rotated"
               " captures, analyze as one trace)\n"
               "                [--format text|json|csv|agg]  output format"
               " (--json = --format json;\n"
               "                 agg = binary .tdagg result archive for 'tdat"
               " aggregate')\n"
               "                [--run-id ID]      shard/run label stamped"
               " into --format agg archives\n"
               "                [--detectors LIST] all, none, or"
               " comma-separated pass names (see 'tdat passes')\n"
               "                [--jobs N] [--stats|--quiet-stats]"
               "   (default jobs: hardware threads, or $TDAT_JOBS)\n"
               "                [--trace FILE]     write a Chrome trace_event"
               " JSON (chrome://tracing, Perfetto)\n"
               "                [--metrics FILE]   write the metrics registry"
               " snapshot sidecar\n"
               "                [--metrics-format json|prometheus]  sidecar"
               " format (default json)\n"
               "                [--log-level L]    trace|debug|info|warn|error"
               "|off (default warn)\n"
               "                [--progress]       live progress ticker on"
               " stderr\n"
               "                [--strict]         stop at the first corrupt"
               " record (historical tail-drop)\n"
               "                [--max-errors N]   resync recovery budget per"
               " file (default 1000)\n"
               "                [--no-mmap]        force the chunked streaming"
               " reader (default: mmap regular files)\n"
               "                [--fleet N]        analyze with an N-worker"
               " process fleet (requires --format agg)\n"
               "  tdat passes   list the registered analysis passes\n"
               "  tdat pcap2mrt <trace.pcap> <out.mrt>\n"
               "  tdat mrtcat   <archive.mrt> [-n N]\n"
               "  tdat timeseq  <trace.pcap> [conn-index]\n"
               "  tdat simulate <scenario> <out.pcap> [--sessions N]\n"
               "      scenarios: baseline timer loss slow-collector window"
               " narrow-pipe probe-bug\n"
               "  tdat corrupt  <in.pcap> <out.pcap> --mode MODE [--seed S]"
               " [--count N]\n"
               "      deterministic capture damage; modes: bit-flip"
               " truncate-tail truncate-record\n"
               "      zero-incl-len overlong-incl-len duplicate-record"
               " reorder-records timestamp-jump\n"
               "      garbage-splice\n"
               "  tdat metrics  <trace.pcap>... [--jobs N]\n"
               "      analyze quietly, print Prometheus text exposition on"
               " stdout\n"
               "  tdat aggregate <in.tdagg>... [--output FILE]"
               " [--report text|json]\n"
               "                [--by peer|as|collector|run]  roll up one"
               " dimension (default: all)\n"
               "                [--diff BASELINE.tdagg]  regression report vs"
               " a baseline aggregate\n"
               "      merge is order-independent: any merge order of the same"
               " archives is byte-identical\n"
               "  tdat shard    <in.pcap> <outdir> [--shards N]  |  tdat"
               " shard <in.pcap> --plan [--shards N]\n"
               "      split records into shard-K.pcap by connection (same"
               " connection -> same shard);\n"
               "      --plan prints the zero-copy offset-run plan as JSON"
               " instead of writing shard files\n"
               "      (the file-writing mode is the portability fallback for"
               " workers without shared storage)\n"
               "  tdat fleet    <trace.pcap> [--workers N] [--shards M]"
               " [--output FILE] [--run-id ID]\n"
               "                [--jobs N] [--location receiver|sender|middle]"
               " [--detectors LIST]\n"
               "                [--heartbeat-ms N] [--timeout-ms N]"
               " [--max-respawns N] [--stats|--quiet-stats]\n"
               "                [--listen HOST:PORT]  accept remote workers"
               " instead of forking local ones\n"
               "                [--strict] [--max-errors N]\n"
               "      zero-copy shard plan -> N workers over the same capture"
               " -> merged .tdagg on stdout\n"
               "      (byte-identical to single-process 'analyze --format"
               " agg'; no shard pcaps written)\n"
               "  tdat fleet    --connect HOST:PORT\n"
               "      run as a remote worker for a '--listen' coordinator\n"
               "  tdat watch    <growing.pcap> [--output FILE]"
               " [--snapshot-dir DIR]\n"
               "                [--format text|json|csv|agg]"
               " [--snapshot-interval SECS] [--poll-ms N]\n"
               "                [--window SECS] [--idle-gc SECS]  bounded"
               " memory: evict packet history\n"
               "                 older than the window; retire connections"
               " idle past --idle-gc\n"
               "                [--run-id ID] [--jobs N] [--detectors LIST]"
               " [--location receiver|sender|middle]\n"
               "                [--strict] [--max-errors N] [--log-level L]"
               " [--stats|--quiet-stats] [--once]\n"
               "                [--checkpoint FILE]  durable .tdckpt resume"
               " state, rewritten with each\n"
               "                 snapshot; on restart a valid checkpoint"
               " resumes mid-capture (a torn,\n"
               "                 corrupt, or mismatched one falls back to full"
               " replay, never a crash)\n"
               "      tail a growing (and rotating) capture; emit a report"
               " snapshot every interval\n"
               "      (--output replaces FILE atomically; --snapshot-dir"
               " keeps one file per snapshot;\n"
               "       no sink flag prints to stdout). SIGINT/SIGTERM drain"
               " and write a final snapshot;\n"
               "      SIGHUP forces an immediate out-of-cycle snapshot +"
               " checkpoint;\n"
               "      --once drains what is on disk now and exits\n"
               "  tdat version  print version, git revision, build type\n"
               "exit codes: 0 clean, 1 completed with recoverable input"
               " errors (aggregate --diff: regressions), 2 usage,"
               " 3 unreadable input\n");
  return 2;
}

Result<PcapFile> load(const char* path) { return read_pcap_file(path); }

// Live pipeline ticker for `analyze --progress`: a sampling thread reads the
// global metric counters the pipeline already maintains (no analyzer hooks
// needed) and repaints one stderr line. On a TTY the line is redrawn in
// place a few times a second; piped to a file it appends a plain line every
// couple of seconds instead, so logs stay diff-friendly.
class ProgressTicker {
 public:
  ProgressTicker() {
#if defined(__unix__) || defined(__APPLE__)
    tty_ = isatty(fileno(stderr)) != 0;
#endif
    thread_ = std::thread([this] { run(); });
  }

  ~ProgressTicker() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    if (drew_ && tty_) std::fprintf(stderr, "\r\033[K");
  }

  ProgressTicker(const ProgressTicker&) = delete;
  ProgressTicker& operator=(const ProgressTicker&) = delete;

 private:
  void run() {
    MetricsRegistry& reg = metrics();
    Counter& records = reg.counter("pcap.records");
    Counter& bytes = reg.counter("pcap.bytes");
    Counter& done = reg.counter("analyze.connections_done");
    const auto interval =
        std::chrono::milliseconds(tty_ ? 150 : 2000);
    auto next_paint = std::chrono::steady_clock::now() + interval;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      if (std::chrono::steady_clock::now() < next_paint) continue;
      next_paint += interval;
      paint(records.value(), bytes.value(), done.value());
    }
  }

  void paint(std::uint64_t records, std::uint64_t bytes, std::uint64_t done) {
    if (!tty_ && records == last_records_ && done == last_done_) return;
    last_records_ = records;
    last_done_ = done;
    drew_ = true;
    std::fprintf(stderr,
                 "%s[tdat] %llu records (%.1f MB) read, %llu connections"
                 " analyzed%s",
                 tty_ ? "\r\033[K" : "",
                 static_cast<unsigned long long>(records),
                 static_cast<double>(bytes) / 1e6,
                 static_cast<unsigned long long>(done), tty_ ? "" : "\n");
    if (tty_) std::fflush(stderr);
  }

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool tty_ = false;
  bool drew_ = false;
  std::uint64_t last_records_ = 0;
  std::uint64_t last_done_ = 0;
};

// Writes the process-wide metrics snapshot to `path` — one JSON object, or
// the Prometheus text exposition when `prometheus` (for node_exporter's
// textfile collector and friends).
bool write_metrics_file(const std::string& path, bool prometheus) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string body = prometheus ? metrics().to_prometheus() : metrics().to_json();
  if (!prometheus) body += '\n';
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

// Everything `tdat analyze` accepts, parsed by one loop so every flag gets
// the same treatment: unknown flags, missing values, and malformed numbers
// all come back as one-line errors instead of the generic usage dump.
struct AnalyzeCommand {
  AnalyzerOptions opts;
  std::vector<std::string> inputs;  // files and/or directories
  ReportFormat format = ReportFormat::kText;
  bool show_stats = true;
  bool progress = false;
  bool metrics_prometheus = false;
  std::size_t fleet_workers = 0;  // 0 = in-process (no fleet)
  std::string trace_path;
  std::string metrics_path;
  std::string log_level;
  ReportRenderOptions render;
};

Result<AnalyzeCommand> parse_analyze_args(int argc, char** argv) {
  AnalyzeCommand cmd;
  cmd.opts.jobs = 0;  // default: hardware concurrency (or $TDAT_JOBS)
  // Flags taking a value; `i` advances past it on success.
  const auto value_of = [&](int& i) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Err<std::string>(std::string("flag '") + argv[i] +
                              "' needs a value");
    }
    return std::string(argv[++i]);
  };
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      cmd.format = ReportFormat::kJson;
    } else if (arg == "--format") {
      TDAT_TRY(value, value_of(i));
      auto format = parse_report_format(value);
      if (!format.ok()) return Err<AnalyzeCommand>("--format: " + format.error());
      cmd.format = format.value();
    } else if (arg == "--location") {
      TDAT_TRY(where, value_of(i));
      if (where == "receiver") {
        cmd.opts.location = SnifferLocation::kNearReceiver;
      } else if (where == "sender") {
        cmd.opts.location = SnifferLocation::kNearSender;
      } else if (where == "middle") {
        cmd.opts.location = SnifferLocation::kMiddle;
      } else {
        return Err<AnalyzeCommand>("--location: unknown location '" + where +
                                   "' (valid: receiver, sender, middle)");
      }
    } else if (arg == "--detectors") {
      TDAT_TRY(list, value_of(i));
      auto selection = parse_detector_selection(list);
      if (!selection.ok()) {
        return Err<AnalyzeCommand>("--detectors: " + selection.error());
      }
      cmd.opts.passes = selection.value();
    } else if (arg == "--series") {
      TDAT_TRY(name, value_of(i));
      cmd.render.series.push_back(std::move(name));
    } else if (arg == "--jobs") {
      TDAT_TRY(jobs, value_of(i));
      char* end = nullptr;
      const unsigned long v = std::strtoul(jobs.c_str(), &end, 10);
      if (end == jobs.c_str() || *end != '\0') {
        return Err<AnalyzeCommand>("--jobs: not a number: '" + jobs + "'");
      }
      cmd.opts.jobs = static_cast<std::size_t>(v);  // 0 = hardware default
    } else if (arg == "--stats") {
      cmd.show_stats = true;
    } else if (arg == "--quiet-stats") {
      cmd.show_stats = false;
    } else if (arg == "--trace") {
      TDAT_TRY(path, value_of(i));
      cmd.trace_path = std::move(path);
    } else if (arg == "--metrics") {
      TDAT_TRY(path, value_of(i));
      cmd.metrics_path = std::move(path);
    } else if (arg == "--metrics-format") {
      TDAT_TRY(fmt, value_of(i));
      if (fmt == "prometheus") {
        cmd.metrics_prometheus = true;
      } else if (fmt == "json") {
        cmd.metrics_prometheus = false;
      } else {
        return Err<AnalyzeCommand>("--metrics-format: unknown format '" + fmt +
                                   "' (valid: json, prometheus)");
      }
    } else if (arg == "--run-id") {
      TDAT_TRY(id, value_of(i));
      cmd.render.run_id = std::move(id);
    } else if (arg == "--log-level") {
      TDAT_TRY(level, value_of(i));
      cmd.log_level = std::move(level);
    } else if (arg == "--progress") {
      cmd.progress = true;
    } else if (arg == "--strict") {
      cmd.opts.ingest.strict = true;
    } else if (arg == "--no-mmap") {
      cmd.opts.ingest.use_mmap = false;
    } else if (arg == "--fleet") {
      TDAT_TRY(workers, value_of(i));
      char* end = nullptr;
      const unsigned long v = std::strtoul(workers.c_str(), &end, 10);
      if (end == workers.c_str() || *end != '\0' || v == 0) {
        return Err<AnalyzeCommand>("--fleet: need a positive worker count");
      }
      cmd.fleet_workers = static_cast<std::size_t>(v);
    } else if (arg == "--max-errors") {
      TDAT_TRY(budget, value_of(i));
      char* end = nullptr;
      const unsigned long v = std::strtoul(budget.c_str(), &end, 10);
      if (end == budget.c_str() || *end != '\0') {
        return Err<AnalyzeCommand>("--max-errors: not a number: '" + budget +
                                   "'");
      }
      cmd.opts.ingest.max_errors = static_cast<std::size_t>(v);
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      return Err<AnalyzeCommand>("unknown flag '" + std::string(arg) + "'");
    } else {
      cmd.inputs.emplace_back(arg);
    }
  }
  if (cmd.inputs.empty()) {
    return Err<AnalyzeCommand>("no input capture given");
  }
  return cmd;
}

void print_fleet_stats(const fleet::FleetStats& st) {
  std::fprintf(stderr,
               "[tdat] fleet: %llu records (%.2f MB) over %zu shards,"
               " %zu workers (%zu reassignments, %zu respawns) in %.3fs"
               " (plan %.3fs): %.1f MB/s aggregate\n",
               static_cast<unsigned long long>(st.records),
               static_cast<double>(st.capture_bytes) / 1e6, st.shards,
               st.workers, st.reassignments, st.respawns,
               static_cast<double>(st.total_wall_us) / 1e6,
               static_cast<double>(st.plan_wall_us) / 1e6,
               st.bytes_per_sec() / 1e6);
  for (const fleet::WorkerStats& w : st.per_worker) {
    std::fprintf(stderr,
                 "[tdat]   worker %u%s: %zu shard(s), %llu records, %.2f MB"
                 " in %.3fs busy -> %.1f MB/s\n",
                 w.worker_id, w.remote ? " (remote)" : "", w.shards_done,
                 static_cast<unsigned long long>(w.records),
                 static_cast<double>(w.bytes_ingested) / 1e6,
                 static_cast<double>(w.busy_us) / 1e6,
                 w.bytes_per_sec() / 1e6);
  }
}

// Shared tail of `tdat fleet` and `analyze --fleet`: run the fleet, emit the
// merged archive, surface recoverable capture damage in the exit code the
// same way a single-process `analyze` run does.
int run_fleet_and_emit(const std::string& capture,
                       const fleet::FleetOptions& opts,
                       const std::string& output, bool show_stats,
                       const char* tool) {
  auto outcome = fleet::run_fleet(capture, opts);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s: %s\n", tool, outcome.error().c_str());
    return 3;
  }
  const std::string bytes = outcome.value().archive.serialize();
  if (output.empty()) {
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
  } else {
    std::FILE* f = std::fopen(output.c_str(), "wb");
    const bool wrote =
        f != nullptr && std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    if (f != nullptr && std::fclose(f) != 0) {
      std::fprintf(stderr, "%s: cannot write %s\n", tool, output.c_str());
      return 1;
    }
    if (!wrote) {
      std::fprintf(stderr, "%s: cannot write %s\n", tool, output.c_str());
      return 1;
    }
  }
  if (show_stats) print_fleet_stats(outcome.value().stats);
  return outcome.value().archive.ingest.has_errors() ||
                 outcome.value().archive.quarantined() > 0
             ? 1
             : 0;
}

int cmd_analyze(int argc, char** argv) {
  auto parsed = parse_analyze_args(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tdat analyze: %s (run 'tdat' for usage)\n",
                 parsed.error().c_str());
    return 2;
  }
  AnalyzeCommand& cmd = parsed.value();
  if (!cmd.log_level.empty() && !set_log_level(cmd.log_level)) {
    std::fprintf(stderr,
                 "tdat analyze: --log-level: unknown level '%s'"
                 " (run 'tdat' for usage)\n",
                 cmd.log_level.c_str());
    return 2;
  }
  // `--fleet N` sugar: plan + multi-process fleet + merged archive, the
  // byte-identical scale-out form of `--format agg` (see `tdat fleet`).
  if (cmd.fleet_workers > 0) {
    if (cmd.format != ReportFormat::kAgg) {
      std::fprintf(stderr,
                   "tdat analyze: --fleet requires --format agg (run 'tdat'"
                   " for usage)\n");
      return 2;
    }
    if (cmd.inputs.size() != 1 ||
        std::filesystem::is_directory(cmd.inputs.front())) {
      std::fprintf(stderr,
                   "tdat analyze: --fleet takes exactly one capture file\n");
      return 2;
    }
    fleet::FleetOptions fopts;
    fopts.workers = cmd.fleet_workers;
    fopts.run_id = cmd.render.run_id;
    fopts.analyzer = cmd.opts;
    const int rc = run_fleet_and_emit(cmd.inputs.front(), fopts, "",
                                      cmd.show_stats, "tdat analyze");
    if (!cmd.metrics_path.empty() &&
        !write_metrics_file(cmd.metrics_path, cmd.metrics_prometheus)) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   cmd.metrics_path.c_str());
      return rc == 0 ? 1 : rc;
    }
    return rc;
  }
  // Observability sidecars never touch the analysis output: traces and
  // metrics go to their own files, progress goes to stderr, so a run with
  // these flags is byte-identical on stdout to a run without them.
  if (!cmd.trace_path.empty()) trace_start();
  // Streaming ingest: chunked read + decode + demux, then per-connection
  // analysis on the pool. A single capture file takes the single-stream
  // path; several files or a directory are concatenated in rotation order.
  // Every path produces identical results for identical packets.
  Result<TraceAnalysis> analyzed = [&] {
    std::optional<ProgressTicker> ticker;
    if (cmd.progress) ticker.emplace();
    if (cmd.inputs.size() == 1 &&
        !std::filesystem::is_directory(cmd.inputs.front())) {
      return analyze_file(cmd.inputs.front(), cmd.opts);
    }
    return analyze_files(cmd.inputs, cmd.opts);
  }();
  int rc = 0;
  if (!cmd.trace_path.empty() && !trace_stop(cmd.trace_path)) {
    std::fprintf(stderr, "cannot write trace to %s\n", cmd.trace_path.c_str());
    rc = 1;
  }
  if (!cmd.metrics_path.empty() &&
      !write_metrics_file(cmd.metrics_path, cmd.metrics_prometheus)) {
    std::fprintf(stderr, "cannot write metrics to %s\n",
                 cmd.metrics_path.c_str());
    rc = 1;
  }
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.error().c_str());
    return 3;  // unreadable input (exit-code contract, see usage)
  }
  const TraceAnalysis& analysis = analyzed.value();
  const ReportModel model = build_report_model(analysis);
  const std::string rendered = render_report(model, cmd.format, cmd.render);
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  // The analysis completed, but with recoverable input damage: surface it in
  // the exit code so scripted runs notice without parsing the report.
  if (analysis.stats.ingest.has_errors() || analysis.stats.quarantined > 0) {
    rc = 1;
  }
  if (cmd.show_stats) {
    const PipelineStats& st = analysis.stats;
    std::fprintf(stderr,
                 "[tdat] %llu records (%.2f MB) -> %llu packets -> %llu"
                 " connections in %.3fs (ingest %.3fs + analyze %.3fs,"
                 " jobs=%zu): %.1f MB/s, %.0f pkt/s, %.2f conn/s\n"
                 "[tdat] stage rates: ingest %.1f MB/s (%zu threads),"
                 " decode %.1f MB/s, analysis %.1f MB/s\n",
                 static_cast<unsigned long long>(st.records),
                 static_cast<double>(st.bytes_ingested) / 1e6,
                 static_cast<unsigned long long>(st.packets),
                 static_cast<unsigned long long>(st.connections),
                 to_seconds(st.total_wall), to_seconds(st.ingest_wall),
                 to_seconds(st.analyze_wall), st.jobs,
                 st.bytes_per_sec() / 1e6, st.packets_per_sec(),
                 st.connections_per_sec(), st.ingest_bytes_per_sec() / 1e6,
                 st.ingest_jobs, st.decode_bytes_per_sec() / 1e6,
                 st.analysis_bytes_per_sec() / 1e6);
  }
  return rc;
}

int cmd_passes() {
  std::printf("registered analysis passes (run in this order):\n");
  for (std::size_t id = 0; id < pass_registry().size(); ++id) {
    const PassInfo& info = pass_registry().passes()[id]->info();
    std::printf("  %2zu  %-22s %-9s %s", id, info.name, to_string(info.kind),
                info.summary);
    if (!info.deps.empty()) {
      std::printf("  [reads:");
      for (const char* dep : info.deps) std::printf(" %s", dep);
      std::printf("]");
    }
    std::printf("\n");
  }
  std::printf(
      "factor passes always run; choose detectors with"
      " --detectors=all|none|name,name,...\n");
  return 0;
}

int cmd_pcap2mrt(int argc, char** argv) {
  if (argc != 2) return usage();
  const auto trace = load(argv[0]);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.error().c_str());
    return 3;
  }
  std::vector<MrtRecord> all;
  for (const Connection& conn : split_connections(decode_pcap(trace.value()))) {
    const auto profile = compute_profile(conn);
    const auto result = extract_bgp_messages(conn, profile.data_dir);
    const auto records = to_mrt_records(conn, profile.data_dir, result.messages);
    std::printf("%s: %zu messages\n", conn.key.to_string().c_str(),
                records.size());
    all.insert(all.end(), records.begin(), records.end());
  }
  if (!write_mrt_file(argv[1], all)) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("wrote %zu MRT records to %s\n", all.size(), argv[1]);
  return 0;
}

int cmd_mrtcat(int argc, char** argv) {
  if (argc < 1) return usage();
  long limit = -1;
  if (argc >= 3 && std::strcmp(argv[1], "-n") == 0) limit = std::atol(argv[2]);
  const auto records = read_mrt_file(argv[0]);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.error().c_str());
    return 3;
  }
  long shown = 0;
  for (const MrtRecord& rec : records.value()) {
    if (limit >= 0 && shown++ >= limit) break;
    const auto msg = rec.parse();
    std::printf("%lld  AS%u -> AS%u  ", static_cast<long long>(rec.ts / kMicrosPerSec),
                rec.peer_as, rec.local_as);
    if (!msg.ok()) {
      std::printf("(unparseable: %s)\n", msg.error().c_str());
      continue;
    }
    std::printf("%s", to_string(msg.value().type()));
    if (const BgpUpdate* upd = msg.value().as_update()) {
      std::printf("  nlri=%zu withdrawn=%zu", upd->nlri.size(),
                  upd->withdrawn.size());
      if (!upd->nlri.empty()) {
        std::printf("  %s  path %s", upd->nlri.front().to_string().c_str(),
                    upd->attrs.as_path_string().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("(%zu records total)\n", records.value().size());
  return 0;
}

int cmd_timeseq(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto trace = load(argv[0]);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.error().c_str());
    return 3;
  }
  const auto conns = split_connections(decode_pcap(trace.value()));
  const std::size_t index = argc >= 2 ? static_cast<std::size_t>(std::atoi(argv[1])) : 0;
  if (index >= conns.size()) {
    std::fprintf(stderr, "connection %zu of %zu not found\n", index, conns.size());
    return 1;
  }
  const auto& conn = conns[index];
  const auto profile = compute_profile(conn);
  const auto flow = classify_data_packets(conn, profile.data_dir, ClassifyOptions{});
  std::printf("%s\n", conn.key.to_string().c_str());
  std::printf("%s", render_time_sequence(
                        conn, flow, {conn.start_time(), conn.end_time() + 1})
                        .c_str());
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string scenario = argv[0];
  std::size_t sessions = 1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v < 1) {
        std::fprintf(stderr, "--sessions: need a positive count\n");
        return 2;
      }
      sessions = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  SimWorld world(12345);
  SessionSpec spec;
  if (scenario == "timer") {
    spec.bgp.timer_driven = true;
    spec.bgp.timer_interval = 200 * kMicrosPerMilli;
    spec.bgp.msgs_per_tick = 60;
  } else if (scenario == "loss") {
    spec.up_fwd.random_loss = 0.03;
  } else if (scenario == "slow-collector") {
    spec.receiver_tcp.recv_buf_capacity = 8 * 1024;
    spec.collector.read_interval = 300 * kMicrosPerMilli;
    spec.collector.read_chunk = 8 * 1024;
  } else if (scenario == "window") {
    spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    spec.up_fwd.propagation_delay = 25 * kMicrosPerMilli;
    spec.up_rev.propagation_delay = 25 * kMicrosPerMilli;
  } else if (scenario == "narrow-pipe") {
    spec.up_fwd.rate_bytes_per_sec = 100'000;
    spec.up_fwd.queue_packets = 10'000;
  } else if (scenario == "probe-bug") {
    spec.sender_tcp.zero_window_probe_bug = true;
    spec.receiver_tcp.recv_buf_capacity = 4 * 1024;
    spec.collector.read_interval = 300 * kMicrosPerMilli;
    spec.collector.read_chunk = 2 * 1024;
  } else if (scenario != "baseline") {
    return usage();
  }
  Rng rng(54321);
  TableGenConfig tg;
  tg.prefix_count = 8'000;
  // Each extra session is its own BGP peer (distinct addresses are assigned
  // by add_session), so the capture demuxes into `sessions` connections —
  // handy for exercising the parallel analysis pool.
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto s =
        world.add_session(spec, serialize_updates(generate_table(tg, rng)));
    world.start_session(s, static_cast<Micros>(i) * 10 * kMicrosPerMilli);
  }
  world.run_until(600 * kMicrosPerSec);
  const PcapFile trace = world.take_trace();
  if (!write_pcap_file(argv[1], trace)) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("wrote %zu packets (%s scenario) to %s\n", trace.records.size(),
              scenario.c_str(), argv[1]);
  return 0;
}

// Deterministic capture damage from the command line: the same fault
// injector the corruption-matrix test uses, so a recovery scenario seen in
// tests can be reproduced on a real capture (and vice versa).
int cmd_corrupt(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string in_path = argv[0];
  const std::string out_path = argv[1];
  FaultPlan plan;
  bool have_mode = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--mode") {
      const char* value = value_of();
      const auto mode = value ? parse_fault_mode(value) : std::nullopt;
      if (!mode) {
        std::fprintf(stderr, "tdat corrupt: --mode: unknown or missing mode"
                     " (run 'tdat' for the list)\n");
        return 2;
      }
      plan.mode = *mode;
      have_mode = true;
    } else if (arg == "--seed") {
      const char* value = value_of();
      if (value == nullptr) return usage();
      plan.seed = static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--count") {
      const char* value = value_of();
      if (value == nullptr) return usage();
      plan.count = static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
    } else {
      return usage();
    }
  }
  if (!have_mode) return usage();

  std::FILE* in = std::fopen(in_path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "tdat corrupt: cannot open %s\n", in_path.c_str());
    return 3;
  }
  std::vector<std::uint8_t> image;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    image.insert(image.end(), buf, buf + got);
  }
  std::fclose(in);

  const FaultReport report = inject_faults(image, plan);
  if (report.faults_applied == 0) {
    std::fprintf(stderr, "tdat corrupt: %s is not a pcap image with records"
                 " this mode can damage\n", in_path.c_str());
    return 3;
  }
  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  bool wrote = out != nullptr &&
               std::fwrite(image.data(), 1, image.size(), out) == image.size();
  if (out != nullptr && std::fclose(out) != 0) wrote = false;
  if (!wrote) {
    std::fprintf(stderr, "tdat corrupt: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s: applied %zu %s fault(s) touching %zu record(s) -> %s\n",
              in_path.c_str(), report.faults_applied, to_string(plan.mode),
              report.touched_records.size(), out_path.c_str());
  return 0;
}

// `tdat metrics`: run the analysis pipeline with its reports suppressed and
// print the metrics registry as Prometheus text exposition — the one-shot
// scrape form of `analyze --metrics F --metrics-format prometheus`.
int cmd_metrics(int argc, char** argv) {
  AnalyzerOptions opts;
  opts.jobs = 0;
  std::vector<std::string> inputs;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      opts.jobs = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      std::fprintf(stderr, "tdat metrics: unknown flag '%s'\n",
                   std::string(arg).c_str());
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return usage();
  const auto analyzed = analyze_files(inputs, opts);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.error().c_str());
    return 3;
  }
  const std::string body = metrics().to_prometheus();
  std::fwrite(body.data(), 1, body.size(), stdout);
  return analyzed.value().stats.ingest.has_errors() ||
                 analyzed.value().stats.quarantined > 0
             ? 1
             : 0;
}

Result<agg::RollupBy> parse_rollup_by(const std::string& value) {
  if (value == "peer") return agg::RollupBy::kPeer;
  if (value == "as") return agg::RollupBy::kAs;
  if (value == "collector") return agg::RollupBy::kCollector;
  if (value == "run") return agg::RollupBy::kRun;
  return Err<agg::RollupBy>("unknown dimension '" + value +
                            "' (valid: peer, as, collector, run)");
}

// `tdat aggregate`: merge N archives (associative and order-independent —
// the merged bytes are a pure function of the input multiset), then either
// write the merged archive, print roll-ups, or diff against a baseline.
int cmd_aggregate(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string output;
  std::string diff_path;
  bool json = false;
  std::optional<agg::RollupBy> by;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--output") {
      const char* v = value_of();
      if (v == nullptr) return usage();
      output = v;
    } else if (arg == "--diff") {
      const char* v = value_of();
      if (v == nullptr) return usage();
      diff_path = v;
    } else if (arg == "--report") {
      const char* v = value_of();
      if (v == nullptr || (std::strcmp(v, "text") != 0 &&
                           std::strcmp(v, "json") != 0)) {
        std::fprintf(stderr,
                     "tdat aggregate: --report: valid formats: text, json\n");
        return 2;
      }
      json = std::strcmp(v, "json") == 0;
    } else if (arg == "--by") {
      const char* v = value_of();
      auto parsed = parse_rollup_by(v == nullptr ? "" : v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "tdat aggregate: --by: %s\n",
                     parsed.error().c_str());
        return 2;
      }
      by = parsed.value();
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      std::fprintf(stderr, "tdat aggregate: unknown flag '%s'\n",
                   std::string(arg).c_str());
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return usage();
  agg::Archive merged;
  for (const std::string& path : inputs) {
    auto archive = agg::read_archive_file(path);
    if (!archive.ok()) {
      std::fprintf(stderr, "tdat aggregate: %s\n", archive.error().c_str());
      return 3;
    }
    merged.merge_from(archive.value());
  }
  if (!output.empty() && !agg::write_archive_file(output, merged)) {
    std::fprintf(stderr, "tdat aggregate: cannot write %s\n", output.c_str());
    return 1;
  }
  if (!diff_path.empty()) {
    auto baseline = agg::read_archive_file(diff_path);
    if (!baseline.ok()) {
      std::fprintf(stderr, "tdat aggregate: %s\n", baseline.error().c_str());
      return 3;
    }
    agg::DiffOptions opts;
    if (by) opts.by = *by;
    const agg::RollupDiff diff =
        agg::diff_rollups(baseline.value(), merged, opts);
    const std::string body =
        json ? agg::render_diff_json(diff) + "\n" : agg::render_diff_text(diff);
    std::fwrite(body.data(), 1, body.size(), stdout);
    return diff.regressed_count() > 0 ? 1 : 0;
  }
  {
    // Roll-up report: one dimension with --by, otherwise the §IV trio
    // (peer, AS, collector).
    const std::vector<agg::RollupBy> dims =
        by ? std::vector<agg::RollupBy>{*by}
           : std::vector<agg::RollupBy>{agg::RollupBy::kPeer,
                                        agg::RollupBy::kAs,
                                        agg::RollupBy::kCollector};
    std::string body;
    if (json) {
      body += '{';
      bool first = true;
      for (const agg::RollupBy dim : dims) {
        if (!first) body += ", ";
        first = false;
        body += '"';
        body += agg::to_string(dim);
        body += "\": ";
        body += agg::render_rollup_json(agg::build_rollup(merged, dim));
      }
      body += "}\n";
    } else {
      for (const agg::RollupBy dim : dims) {
        body += agg::render_rollup_text(agg::build_rollup(merged, dim));
      }
    }
    std::fwrite(body.data(), 1, body.size(), stdout);
  }
  return 0;
}

// `tdat shard`: split a capture into N per-connection shards — every packet
// of a connection lands in the same shard (conn_key_hash), so analyzing the
// shards separately and merging their archives must reproduce the whole-run
// archive byte for byte (the CI equivalence gate).
int cmd_shard(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string in_path = argv[0];
  std::string out_dir;
  bool plan_mode = false;
  std::size_t shards = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v < 1) {
        std::fprintf(stderr, "tdat shard: --shards: need a positive count\n");
        return 2;
      }
      shards = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--plan") == 0) {
      plan_mode = true;
    } else if (out_dir.empty() && argv[i][0] != '-') {
      out_dir = argv[i];
    } else {
      return usage();
    }
  }
  if (plan_mode) {
    // Zero-copy mode: emit the offset-run plan the fleet coordinator uses —
    // no shard pcap is written, workers read the original capture in place.
    const auto plan = fleet::build_shard_plan(in_path, shards);
    if (!plan.ok()) {
      std::fprintf(stderr, "tdat shard: %s\n", plan.error().c_str());
      return 3;
    }
    const std::string body = plan.value().to_json() + "\n";
    std::fwrite(body.data(), 1, body.size(), stdout);
    return plan.value().ingest.has_errors() ? 1 : 0;
  }
  if (out_dir.empty()) return usage();
  const auto trace = read_pcap_file(in_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.error().c_str());
    return 3;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  std::vector<PcapFile> out(shards);
  for (PcapFile& f : out) {
    f.nanosecond = trace.value().nanosecond;
    f.snaplen = trace.value().snaplen;
  }
  std::size_t index = 0;
  for (const PcapRecord& rec : trace.value().records) {
    // Undecodable (non-TCP) records go to shard 0 so nothing is lost.
    std::size_t shard = 0;
    if (const auto pkt = decode_frame(rec.ts, index++, rec.data)) {
      shard = conn_key_hash(make_conn_key(*pkt)) % shards;
    }
    out[shard].records.push_back(rec);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string path =
        out_dir + "/shard-" + std::to_string(s) + ".pcap";
    if (!write_pcap_file(path, out[s])) {
      std::fprintf(stderr, "tdat shard: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("%s: %zu records\n", path.c_str(), out[s].records.size());
  }
  return 0;
}

// `tdat fleet`: the multi-process driver over the shard plan — fork N local
// workers (or accept remote `--connect` ones), ingest the same capture in
// parallel with zero shard files written, and merge the streamed archives
// into the byte-identical whole-run .tdagg.
int cmd_fleet(int argc, char** argv) {
  fleet::FleetOptions opts;
  std::string input;
  std::string output;
  std::string connect;
  bool show_stats = true;
  const auto fail = [](const std::string& message) {
    std::fprintf(stderr, "tdat fleet: %s (run 'tdat' for usage)\n",
                 message.c_str());
    return 2;
  };
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto count_of = [&](const char* flag, std::size_t min,
                              std::optional<std::size_t>& out_v) {
      const char* v = value_of();
      char* end = nullptr;
      const unsigned long n =
          v == nullptr ? 0 : std::strtoul(v, &end, 10);
      if (v == nullptr || end == v || *end != '\0' || n < min) {
        out_v.reset();
        std::fprintf(stderr, "tdat fleet: %s: need a count >= %zu (run"
                     " 'tdat' for usage)\n", flag, min);
        return false;
      }
      out_v = static_cast<std::size_t>(n);
      return true;
    };
    std::optional<std::size_t> n;
    if (arg == "--workers") {
      if (!count_of("--workers", 1, n)) return 2;
      opts.workers = *n;
    } else if (arg == "--shards") {
      if (!count_of("--shards", 1, n)) return 2;
      opts.shards = *n;
    } else if (arg == "--jobs") {
      if (!count_of("--jobs", 1, n)) return 2;
      opts.analyzer.jobs = *n;
    } else if (arg == "--heartbeat-ms") {
      if (!count_of("--heartbeat-ms", 1, n)) return 2;
      opts.heartbeat_ms = static_cast<std::uint32_t>(*n);
    } else if (arg == "--timeout-ms") {
      if (!count_of("--timeout-ms", 1, n)) return 2;
      opts.timeout_ms = static_cast<std::uint32_t>(*n);
    } else if (arg == "--max-respawns") {
      if (!count_of("--max-respawns", 0, n)) return 2;
      opts.max_respawns = *n;
    } else if (arg == "--max-errors") {
      if (!count_of("--max-errors", 0, n)) return 2;
      opts.analyzer.ingest.max_errors = *n;
    } else if (arg == "--strict") {
      opts.analyzer.ingest.strict = true;
    } else if (arg == "--run-id") {
      const char* v = value_of();
      if (v == nullptr) return fail("--run-id needs a value");
      opts.run_id = v;
    } else if (arg == "--output") {
      const char* v = value_of();
      if (v == nullptr) return fail("--output needs a value");
      output = v;
    } else if (arg == "--listen") {
      const char* v = value_of();
      if (v == nullptr) return fail("--listen needs HOST:PORT");
      opts.listen = v;
    } else if (arg == "--connect") {
      const char* v = value_of();
      if (v == nullptr) return fail("--connect needs HOST:PORT");
      connect = v;
    } else if (arg == "--location") {
      const char* v = value_of();
      if (v != nullptr && std::strcmp(v, "receiver") == 0) {
        opts.analyzer.location = SnifferLocation::kNearReceiver;
      } else if (v != nullptr && std::strcmp(v, "sender") == 0) {
        opts.analyzer.location = SnifferLocation::kNearSender;
      } else if (v != nullptr && std::strcmp(v, "middle") == 0) {
        opts.analyzer.location = SnifferLocation::kMiddle;
      } else {
        return fail("--location: valid: receiver, sender, middle");
      }
    } else if (arg == "--detectors") {
      const char* v = value_of();
      auto selection = parse_detector_selection(v == nullptr ? "" : v);
      if (!selection.ok()) return fail("--detectors: " + selection.error());
      opts.analyzer.passes = selection.value();
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--quiet-stats") {
      show_stats = false;
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      return fail("unknown flag '" + std::string(arg) + "'");
    } else {
      if (!input.empty()) return fail("only one capture file");
      input = arg;
    }
  }
  // Worker mode: dial the coordinator and serve assignments until shutdown.
  if (!connect.empty()) {
    if (!input.empty()) return fail("--connect takes no capture argument");
    return fleet::run_worker_connect(connect);
  }
  if (input.empty()) return fail("no input capture given");
  return run_fleet_and_emit(input, opts, output, show_stats, "tdat fleet");
}

// ------------------------------------------------------------- tdat watch --

// Set by SIGINT/SIGTERM; the watch loop checks it between epochs, drains,
// and writes a final snapshot — never a torn exit mid-analysis.
volatile std::sig_atomic_t g_watch_stop = 0;
// Set by SIGHUP; the watch loop forces an immediate out-of-cycle snapshot
// (and checkpoint, when configured) at the next epoch boundary.
volatile std::sig_atomic_t g_watch_flush = 0;

extern "C" void watch_signal(int) { g_watch_stop = 1; }
extern "C" void watch_flush_signal(int) { g_watch_flush = 1; }

struct WatchCommand {
  AnalyzerOptions opts;
  std::string input;
  std::string output;        // atomic-replace target ("" = stdout)
  std::string snapshot_dir;  // one numbered file per snapshot ("" = off)
  std::string checkpoint;    // durable .tdckpt resume state ("" = off)
  ReportFormat format = ReportFormat::kText;
  ReportRenderOptions render;
  double snapshot_interval_s = 10.0;
  double window_s = 0.0;   // capture-time eviction horizon (0 = keep all)
  double idle_gc_s = 0.0;  // capture-time idle retirement (0 = never)
  unsigned poll_ms = 200;
  bool once = false;
  bool show_stats = true;
  std::string log_level;
};

Result<WatchCommand> parse_watch_args(int argc, char** argv) {
  WatchCommand cmd;
  cmd.opts.jobs = 0;
  const auto value_of = [&](int& i) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Err<std::string>(std::string("flag '") + argv[i] +
                              "' needs a value");
    }
    return std::string(argv[++i]);
  };
  const auto seconds_of = [](const std::string& flag, const std::string& v,
                             double& out) -> Result<bool> {
    char* end = nullptr;
    const double secs = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || secs < 0) {
      return Err<bool>(flag + ": not a non-negative seconds value: '" + v +
                       "'");
    }
    out = secs;
    return true;
  };
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--output") {
      TDAT_TRY(v, value_of(i));
      cmd.output = std::move(v);
    } else if (arg == "--snapshot-dir") {
      TDAT_TRY(v, value_of(i));
      cmd.snapshot_dir = std::move(v);
    } else if (arg == "--checkpoint") {
      TDAT_TRY(v, value_of(i));
      cmd.checkpoint = std::move(v);
    } else if (arg == "--format") {
      TDAT_TRY(v, value_of(i));
      auto format = parse_report_format(v);
      if (!format.ok()) return Err<WatchCommand>("--format: " + format.error());
      cmd.format = format.value();
    } else if (arg == "--snapshot-interval") {
      TDAT_TRY(v, value_of(i));
      TDAT_TRY(ok, seconds_of("--snapshot-interval", v,
                              cmd.snapshot_interval_s));
      (void)ok;
    } else if (arg == "--window") {
      TDAT_TRY(v, value_of(i));
      TDAT_TRY(ok, seconds_of("--window", v, cmd.window_s));
      (void)ok;
    } else if (arg == "--idle-gc") {
      TDAT_TRY(v, value_of(i));
      TDAT_TRY(ok, seconds_of("--idle-gc", v, cmd.idle_gc_s));
      (void)ok;
    } else if (arg == "--poll-ms") {
      TDAT_TRY(v, value_of(i));
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n == 0) {
        return Err<WatchCommand>("--poll-ms: need a positive count");
      }
      cmd.poll_ms = static_cast<unsigned>(n);
    } else if (arg == "--run-id") {
      TDAT_TRY(v, value_of(i));
      cmd.render.run_id = std::move(v);
    } else if (arg == "--jobs") {
      TDAT_TRY(v, value_of(i));
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') {
        return Err<WatchCommand>("--jobs: not a number: '" + v + "'");
      }
      cmd.opts.jobs = static_cast<std::size_t>(n);
    } else if (arg == "--detectors") {
      TDAT_TRY(v, value_of(i));
      auto selection = parse_detector_selection(v);
      if (!selection.ok()) {
        return Err<WatchCommand>("--detectors: " + selection.error());
      }
      cmd.opts.passes = selection.value();
    } else if (arg == "--location") {
      TDAT_TRY(v, value_of(i));
      if (v == "receiver") {
        cmd.opts.location = SnifferLocation::kNearReceiver;
      } else if (v == "sender") {
        cmd.opts.location = SnifferLocation::kNearSender;
      } else if (v == "middle") {
        cmd.opts.location = SnifferLocation::kMiddle;
      } else {
        return Err<WatchCommand>("--location: unknown location '" + v +
                                 "' (valid: receiver, sender, middle)");
      }
    } else if (arg == "--strict") {
      cmd.opts.ingest.strict = true;
    } else if (arg == "--max-errors") {
      TDAT_TRY(v, value_of(i));
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') {
        return Err<WatchCommand>("--max-errors: not a number: '" + v + "'");
      }
      cmd.opts.ingest.max_errors = static_cast<std::size_t>(n);
    } else if (arg == "--log-level") {
      TDAT_TRY(v, value_of(i));
      cmd.log_level = std::move(v);
    } else if (arg == "--once") {
      cmd.once = true;
    } else if (arg == "--stats") {
      cmd.show_stats = true;
    } else if (arg == "--quiet-stats") {
      cmd.show_stats = false;
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      return Err<WatchCommand>("unknown flag '" + std::string(arg) + "'");
    } else {
      if (!cmd.input.empty()) {
        return Err<WatchCommand>("watch takes exactly one capture path");
      }
      cmd.input = arg;
    }
  }
  if (cmd.input.empty()) return Err<WatchCommand>("no capture path given");
  return cmd;
}

const char* snapshot_extension(ReportFormat format) {
  switch (format) {
    case ReportFormat::kJson: return "json";
    case ReportFormat::kCsv: return "csv";
    case ReportFormat::kAgg: return "tdagg";
    default: return "txt";
  }
}

// Snapshot writes go through the durable atomic writer (temp + fsync +
// rename): a failed write — ENOSPC, short write, crash mid-rename — leaves
// the previous snapshot at `path` intact, and the next interval retries.
bool emit_snapshot(LiveEngine& engine, const WatchCommand& cmd,
                   std::size_t seq) {
  const std::string body = engine.render_snapshot(cmd.format, cmd.render);
  bool ok = true;
  if (!cmd.output.empty()) {
    auto wrote = write_file_atomic_durable(cmd.output, body);
    if (!wrote.ok()) {
      std::fprintf(stderr,
                   "tdat watch: snapshot write failed (previous snapshot"
                   " kept, retrying next interval): %s\n",
                   wrote.error().c_str());
      metrics().counter("live.snapshot.write_failures").inc();
      ok = false;
    }
  }
  if (!cmd.snapshot_dir.empty()) {
    char name[64];
    std::snprintf(name, sizeof(name), "/snapshot-%06zu.%s", seq,
                  snapshot_extension(cmd.format));
    auto wrote = write_file_atomic_durable(cmd.snapshot_dir + name, body);
    if (!wrote.ok()) {
      std::fprintf(stderr, "tdat watch: snapshot write failed: %s\n",
                   wrote.error().c_str());
      metrics().counter("live.snapshot.write_failures").inc();
      ok = false;
    }
  }
  if (cmd.output.empty() && cmd.snapshot_dir.empty()) {
    std::fwrite(body.data(), 1, body.size(), stdout);
    std::fflush(stdout);
  }
  return ok;
}

// Rewrites the .tdckpt after a snapshot. Best-effort by design: a rotated
// capture has no single resume offset (skipped, full replay on restart), and
// a failed write keeps the previous checkpoint — the restart just replays a
// little more.
void write_watch_checkpoint(LiveEngine& engine, const FollowSource& source,
                            const WatchCommand& cmd) {
  if (cmd.checkpoint.empty()) return;
  if (!source.checkpointable()) {
    metrics().counter("live.checkpoint.skipped_rotation").inc();
    TDAT_LOG_DEBUG("watch: checkpoint skipped (capture rotated)");
    return;
  }
  LiveCheckpoint ckpt;
  if (auto st = engine.checkpoint_state(ckpt); !st.ok()) {
    metrics().counter("live.checkpoint.skipped_state").inc();
    TDAT_LOG_WARN("watch: checkpoint skipped: %s", st.error().c_str());
    return;
  }
  auto id = compute_capture_identity(cmd.input);
  if (!id.ok()) {
    metrics().counter("live.checkpoint.skipped_state").inc();
    TDAT_LOG_WARN("watch: checkpoint skipped: %s", id.error().c_str());
    return;
  }
  ckpt.capture = id.value();
  const PcapStream::Resume resume = source.resume_state();
  ckpt.resume_offset = resume.offset;
  ckpt.records_seen = resume.records;
  ckpt.stream_last_ts = resume.last_ts;
  ckpt.diag = resume.diag;
  if (auto wrote = write_checkpoint_file(cmd.checkpoint, ckpt); !wrote.ok()) {
    std::fprintf(stderr,
                 "tdat watch: checkpoint write failed (previous checkpoint"
                 " kept, retrying next interval): %s\n",
                 wrote.error().c_str());
  }
}

// Loads, validates, and applies a checkpoint to a fresh engine; returns the
// resume state for the FollowSource. Every failure path degrades to full
// replay with a structured diagnostic — a damaged checkpoint must never take
// the daemon down.
std::optional<PcapStream::Resume> try_restore(
    const WatchCommand& cmd, const LiveOptions& lopts, LiveCheckpoint& out) {
  if (cmd.checkpoint.empty()) return std::nullopt;
  std::error_code ec;
  if (!std::filesystem::exists(cmd.checkpoint, ec)) {
    TDAT_LOG_INFO("watch: no checkpoint at %s; cold start",
                  cmd.checkpoint.c_str());
    return std::nullopt;
  }
  const auto fallback = [&](const std::string& why) {
    std::fprintf(stderr,
                 "tdat watch: checkpoint %s unusable (%s); falling back to"
                 " full replay\n",
                 cmd.checkpoint.c_str(), why.c_str());
    metrics().counter("live.restore.fallback_full_replay").inc();
    return std::nullopt;
  };
  auto loaded = read_checkpoint_file(cmd.checkpoint);
  if (!loaded.ok()) return fallback(loaded.error());
  out = std::move(loaded).value();
  if (auto id = validate_capture_identity(out.capture, cmd.input); !id.ok()) {
    return fallback(id.error());
  }
  LiveCheckpoint echo;
  echo.config.location = static_cast<std::uint8_t>(lopts.analyzer.location);
  echo.config.verify_checksums = lopts.analyzer.verify_checksums;
  echo.config.strict = lopts.analyzer.ingest.strict;
  echo.config.enable_ack_shift = lopts.analyzer.enable_ack_shift;
  echo.config.pass_bits = lopts.analyzer.passes.bits;
  echo.config.max_errors =
      static_cast<std::uint64_t>(lopts.analyzer.ingest.max_errors);
  echo.config.window = lopts.window;
  echo.config.idle_gc = lopts.idle_gc;
  if (!(echo.config == out.config)) {
    return fallback("engine configuration changed since the checkpoint");
  }
  PcapStream::Resume resume;
  resume.offset = out.resume_offset;
  resume.records = out.records_seen;
  resume.last_ts = out.stream_last_ts;
  resume.diag = out.diag;
  return resume;
}

// `tdat watch`: the always-on daemon. Tails the capture through
// FollowSource + LiveEngine, emits a report snapshot every interval, and on
// SIGINT/SIGTERM (or --once) drains to the true end of data — batch
// end-of-trace semantics, truncation tallies included — and writes one
// final snapshot before exiting.
int cmd_watch(int argc, char** argv) {
  auto parsed = parse_watch_args(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tdat watch: %s (run 'tdat' for usage)\n",
                 parsed.error().c_str());
    return 2;
  }
  WatchCommand& cmd = parsed.value();
  if (!cmd.log_level.empty() && !set_log_level(cmd.log_level)) {
    std::fprintf(stderr, "tdat watch: --log-level: unknown level '%s'\n",
                 cmd.log_level.c_str());
    return 2;
  }
  if (!cmd.snapshot_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cmd.snapshot_dir, ec);
  }

  LiveOptions lopts;
  lopts.analyzer = cmd.opts;
  lopts.window = static_cast<Micros>(cmd.window_s * kMicrosPerSec);
  lopts.idle_gc = static_cast<Micros>(cmd.idle_gc_s * kMicrosPerSec);

  // Restore-or-fallback: a valid checkpoint resumes the engine and the
  // stream mid-capture; any failure (torn file, replaced capture, changed
  // config, replay divergence) degrades to a fresh engine and full replay.
  // The engine holds the source by reference, so both live in optionals
  // that are rebuilt together on fallback.
  std::optional<FollowSource> source_store;
  std::optional<LiveEngine> engine_store;
  LiveCheckpoint ckpt;
  if (auto resume = try_restore(cmd, lopts, ckpt)) {
    source_store.emplace(cmd.input, cmd.opts.verify_checksums,
                         cmd.opts.ingest, *resume);
    engine_store.emplace(*source_store, lopts);
    if (auto restored = engine_store->restore_state(ckpt, cmd.input);
        !restored.ok()) {
      std::fprintf(stderr,
                   "tdat watch: checkpoint %s unusable (%s); falling back to"
                   " full replay\n",
                   cmd.checkpoint.c_str(), restored.error().c_str());
      metrics().counter("live.restore.fallback_full_replay").inc();
      engine_store.reset();  // before the source it references
      source_store.reset();
    } else {
      metrics().counter("live.restore.resumed").inc();
      TDAT_LOG_INFO("watch: resumed from %s at offset %llu (%llu records)",
                    cmd.checkpoint.c_str(),
                    static_cast<unsigned long long>(ckpt.resume_offset),
                    static_cast<unsigned long long>(ckpt.records_seen));
    }
  }
  if (!engine_store.has_value()) {
    source_store.emplace(cmd.input, cmd.opts.verify_checksums,
                         cmd.opts.ingest);
    engine_store.emplace(*source_store, lopts);
  }
  FollowSource& source = *source_store;
  LiveEngine& engine = *engine_store;

  g_watch_stop = 0;
  g_watch_flush = 0;
  std::signal(SIGINT, watch_signal);
  std::signal(SIGTERM, watch_signal);
#ifdef SIGHUP
  std::signal(SIGHUP, watch_flush_signal);
#endif

  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(cmd.snapshot_interval_s));
  auto next_snapshot = Clock::now() + interval;
  std::size_t seq = 0;
  bool emit_ok = true;
  while (!cmd.once && g_watch_stop == 0) {
    const std::size_t records = engine.run_epoch();
    maybe_crash_at("epoch");  // deterministic chaos seam (TDAT_CRASH_AT)
    if (source.failed()) break;
    if (g_watch_flush != 0) {  // SIGHUP: out-of-cycle snapshot + checkpoint
      g_watch_flush = 0;
      next_snapshot = Clock::now();
    }
    if (Clock::now() >= next_snapshot) {
      emit_ok = emit_snapshot(engine, cmd, seq++) && emit_ok;
      write_watch_checkpoint(engine, source, cmd);
      next_snapshot = Clock::now() + interval;
    }
    if (records > 0) continue;  // backlog: keep ingesting at full speed
    if (!engine.source_live()) break;
    if (!engine.poll_source() && g_watch_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(cmd.poll_ms));
    }
  }

  // Final drain: consume everything written so far with batch end-of-data
  // semantics, then one last snapshot so no analysis is lost.
  if (!source.failed()) engine.drain();
  if (source.failed()) {
    std::fprintf(stderr, "tdat watch: %s\n", source.error().c_str());
    return 3;
  }
  if (source.bytes_ingested() == 0 && !std::filesystem::exists(cmd.input)) {
    std::fprintf(stderr, "tdat watch: %s never appeared\n", cmd.input.c_str());
    return 3;
  }
  emit_ok = emit_snapshot(engine, cmd, seq++) && emit_ok;
  if (cmd.show_stats) {
    const LiveEngineStats& st = engine.stats();
    const PipelineStats ps = engine.pipeline_stats();
    std::fprintf(stderr,
                 "[tdat] watch: %llu records (%.2f MB) -> %llu packets in"
                 " %llu epochs; %llu connections (%llu active, %llu"
                 " retired), %llu packets evicted; %zu snapshots\n",
                 static_cast<unsigned long long>(st.records),
                 static_cast<double>(ps.bytes_ingested) / 1e6,
                 static_cast<unsigned long long>(st.packets),
                 static_cast<unsigned long long>(st.epochs),
                 static_cast<unsigned long long>(st.connections_total),
                 static_cast<unsigned long long>(st.connections_active),
                 static_cast<unsigned long long>(st.connections_gc),
                 static_cast<unsigned long long>(st.packets_evicted), seq);
  }
  if (!emit_ok) return 1;
  const PipelineStats ps = engine.pipeline_stats();
  return ps.ingest.has_errors() || ps.quarantined > 0 ? 1 : 0;
}

int cmd_version() {
  std::printf("%s\n", version_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Wire the .tdagg archive renderer behind `--format agg` before any
  // command can render a report (core dispatches through the hook).
  agg::register_aggregate_sink();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "analyze") return cmd_analyze(argc - 2, argv + 2);
  if (cmd == "passes") return cmd_passes();
  if (cmd == "pcap2mrt") return cmd_pcap2mrt(argc - 2, argv + 2);
  if (cmd == "mrtcat") return cmd_mrtcat(argc - 2, argv + 2);
  if (cmd == "timeseq") return cmd_timeseq(argc - 2, argv + 2);
  if (cmd == "simulate") return cmd_simulate(argc - 2, argv + 2);
  if (cmd == "corrupt") return cmd_corrupt(argc - 2, argv + 2);
  if (cmd == "metrics") return cmd_metrics(argc - 2, argv + 2);
  if (cmd == "aggregate") return cmd_aggregate(argc - 2, argv + 2);
  if (cmd == "shard") return cmd_shard(argc - 2, argv + 2);
  if (cmd == "fleet") return cmd_fleet(argc - 2, argv + 2);
  if (cmd == "watch") return cmd_watch(argc - 2, argv + 2);
  if (cmd == "version" || cmd == "--version" || cmd == "-V") {
    return cmd_version();
  }
  return usage();
}
