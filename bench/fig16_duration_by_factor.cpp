// Figure 16: transfer-duration CDF grouped by the dominant delay factor.
// Paper: TCP-receiver-window-limited transfers are fastest, congestion-
// window next; loss-limited transfers waste RTOs and stretch to hundreds of
// seconds; BGP-application-limited also run long.
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 16 — transfer duration by dominant delay factor",
                      "Fig. 16");

  // Pool all three datasets, bucket by the single largest factor.
  std::map<Factor, std::vector<double>> buckets;
  for (int i = 0; i < 3; ++i) {
    for (const TransferRecord& t : bench::dataset(i).transfers) {
      if (t.analysis.transfer.empty()) continue;
      Factor best = Factor::kBgpSenderApp;
      double best_ratio = -1;
      for (std::size_t f = 0; f < kFactorCount; ++f) {
        if (t.analysis.report.factor_ratio[f] > best_ratio) {
          best_ratio = t.analysis.report.factor_ratio[f];
          best = static_cast<Factor>(f);
        }
      }
      if (best_ratio > 0.05) {
        buckets[best].push_back(to_seconds(t.analysis.transfer_duration()));
      }
    }
  }

  TextTable t({"Dominant factor", "n", "p50 (s)", "p90 (s)", "max (s)"});
  for (const auto& [factor, durations] : buckets) {
    auto d = durations;
    if (d.empty()) continue;
    t.add_row({to_string(factor), std::to_string(d.size()),
               fmt_double(percentile(d, 50), 2), fmt_double(percentile(d, 90), 2),
               fmt_double(percentile(d, 100), 2)});
  }
  std::printf("%s\n", t.to_string().c_str());

  for (const auto& [factor, durations] : buckets) {
    bench::print_cdf(to_string(factor), durations, 8);
    std::printf("\n");
  }
  return 0;
}
