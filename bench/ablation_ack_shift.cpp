// Ablation (§III-B1): how much does the ACK-flight shift matter? Without
// it, every ACK is read at its capture time — roughly one path RTT before
// the sender perceives it — so the analyzer sees phantom "sender idle" time
// before each flight and misattributes window-bound waiting to the BGP
// application. The error grows with RTT.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"

int main() {
  using namespace tdat;
  bench::print_header(
      "Ablation — ACK-flight shifting on/off (window-bound transfer)",
      "§III-B1 / Fig. 12-13");

  std::printf("%-14s %-22s %-22s\n", "one-way (ms)", "BGP-sender-app (shift)",
              "BGP-sender-app (no shift)");
  for (Micros one_way_ms : {2, 10, 25, 50}) {
    SimWorld world(2600 + static_cast<std::uint64_t>(one_way_ms));
    SessionSpec spec;
    spec.receiver_tcp.recv_buf_capacity = 16 * 1024;  // window-bound
    spec.up_fwd.propagation_delay = from_millis(one_way_ms);
    spec.up_rev.propagation_delay = from_millis(one_way_ms);
    Rng rng(2700 + static_cast<std::uint64_t>(one_way_ms));
    TableGenConfig tg;
    tg.prefix_count = 6'000;
    const auto s =
        world.add_session(spec, serialize_updates(generate_table(tg, rng)));
    world.start_session(s, 0);
    world.run_until(300 * kMicrosPerSec);
    const PcapFile trace = world.take_trace();

    AnalyzerOptions with_shift;
    AnalyzerOptions without_shift;
    without_shift.enable_ack_shift = false;
    const auto on = analyze_trace(trace, with_shift);
    const auto off = analyze_trace(trace, without_shift);
    std::printf("%-14lld %-22.3f %-22.3f\n",
                static_cast<long long>(one_way_ms),
                on.results.at(0).report.ratio(Factor::kBgpSenderApp),
                off.results.at(0).report.ratio(Factor::kBgpSenderApp));
  }
  std::printf("\nThis transfer has NO application idling: any sender-app ratio\n"
              "is measurement error. The shift keeps it near zero regardless\n"
              "of path length.\n");
  return 0;
}
