// Pipeline throughput: end-to-end analyze_trace over multi-session captures
// at 1/2/4/8 analysis workers, swept across workload sizes (16/64/256
// sessions), plus the streaming analyze_file path, emitting a
// machine-readable BENCH_pipeline.json (path overridable via argv[1]).
//
// The ingest stage (read + decode + demux) is also measured standing alone,
// over a real file through both readers (mmap and chunked streaming) at
// jobs=1 and jobs=8; the best rate is the file's headline_ingest_mb_per_s.
// That headline is what CI gates on:
//
//   pipeline_throughput --gate BENCH_pipeline.json [--min-ratio 0.9]
//
// re-measures just the ingest stage and exits non-zero when the current rate
// falls below min-ratio of the committed baseline. The gate only binds on
// the same runner class (equal cpu_cores); otherwise it reports and passes.
//
// Besides the wall times it verifies the determinism contract: every job
// count must produce byte-identical analysis output (JSON export of every
// connection's report and all 34 series) to the jobs=1 serial baseline of
// the same workload — any mismatch makes the benchmark exit non-zero.
// Per-connection allocation counts (operator-new hook) are reported so
// regressions of the zero-steady-state-allocation property show up in the
// committed numbers, not just in the unit test.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "core/ingest_pipeline.hpp"
#include "core/trace_source.hpp"
#include "sim/world.hpp"
#include "util/alloc_hook.hpp"
#include "util/metrics.hpp"

namespace {

using namespace tdat;

constexpr std::size_t kPrefixes = 10'000;

PcapFile make_trace(std::size_t sessions) {
  SimWorld world(7777 + sessions);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    // Vary the bottleneck so connections cost unequal analysis time — the
    // realistic (and scheduling-hostile) case for the index-handout pool.
    if (i % 4 == 1) spec.up_fwd.random_loss = 0.005;
    if (i % 4 == 2) spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    if (i % 4 == 3) {
      spec.bgp.timer_driven = true;
      spec.bgp.timer_interval = 200 * kMicrosPerMilli;
      spec.bgp.msgs_per_tick = 60;
    }
    Rng rng(8100 + 13 * i);
    TableGenConfig tg;
    tg.prefix_count = kPrefixes;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Full analysis output as one string: byte-identity across job counts is
// the acceptance check, so include everything observable per connection.
std::string fingerprint(const TraceAnalysis& ta) {
  std::string out;
  for (const ConnectionAnalysis& conn : ta.results) {
    out += analysis_to_json(conn);
    out += registry_to_json(conn.series());
  }
  return out;
}

struct RunResult {
  std::size_t jobs = 0;
  double best_wall_s = 0;
  PipelineStats stats;
  bool identical = true;
  // Per-connection heap allocations during the best run's analysis stage
  // (operator-new hook; count == 0 when the hook is compiled out).
  HistogramSnapshot allocs;
};

struct SizeResult {
  std::size_t sessions = 0;
  std::size_t records = 0;
  std::uint64_t trace_bytes = 0;
  std::vector<RunResult> runs;
  RunResult streamed;
  bool streamed_ok = false;
};

HistogramSnapshot allocs_since(const HistogramSnapshot& before) {
  return metrics().histogram("analyze.allocs_per_conn").snapshot().since(
      before);
}

void print_run(const char* label, const RunResult& run, int reps) {
  std::printf(
      "%s jobs=%zu: %.3fs best of %d (ingest %.3fs + analyze %.3fs), "
      "allocs/conn mean %.1f, identical=%s\n",
      label, run.jobs, run.best_wall_s, reps, to_seconds(run.stats.ingest_wall),
      to_seconds(run.stats.analyze_wall), run.allocs.mean(),
      run.identical ? "yes" : "NO");
}

std::string alloc_json(const HistogramSnapshot& h) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"connections\": %llu, \"mean\": %.2f, \"p90\": %lld}",
                static_cast<unsigned long long>(h.count), h.mean(),
                static_cast<long long>(h.quantile(0.9)));
  return buf;
}

// --- ingest-stage-only measurement (the CI-gated number) ------------------

struct IngestRun {
  bool mmap = false;
  std::size_t jobs = 1;
  double best_s = 1e100;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;

  [[nodiscard]] double mb_per_s() const {
    return best_s > 0 ? static_cast<double>(bytes) / best_s / 1e6 : 0;
  }
};

struct IngestBench {
  std::vector<IngestRun> runs;
  double headline_mb_per_s = 0;  // best rate across the four configs
  bool agree = true;             // identical packet counts everywhere
};

// Drain run_ingest_stage over a real file, best of `reps`, for
// {mmap, stream} x {jobs 1, 8}. Uses the same 64-session workload in full
// and --gate mode so the committed headline and the gate measurement are
// comparable.
IngestBench bench_ingest_stage(const std::string& pcap_path, int reps) {
  IngestBench bench;
  for (const bool mmap : {true, false}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
      IngestRun run;
      run.mmap = mmap;
      run.jobs = jobs;
      for (int rep = 0; rep < reps; ++rep) {
        IngestPolicy policy;
        policy.use_mmap = mmap;
        auto source = PcapStreamSource::open(pcap_path, false, policy);
        if (!source.ok()) {
          std::fprintf(stderr, "ingest bench: %s\n", source.error().c_str());
          bench.agree = false;
          return bench;
        }
        AnalyzerOptions opts;
        opts.jobs = jobs;
        const auto t0 = std::chrono::steady_clock::now();
        const IngestStageResult got =
            run_ingest_stage(source.value(), opts);
        const double wall = wall_seconds_since(t0);
        if (wall < run.best_s) run.best_s = wall;
        run.bytes = source.value().bytes_ingested();
        if (run.packets == 0) {
          run.packets = got.packets;
        } else if (run.packets != got.packets) {
          bench.agree = false;
        }
      }
      if (!bench.runs.empty() && run.packets != bench.runs.front().packets) {
        bench.agree = false;
      }
      std::printf("ingest stage %s jobs=%zu: %8.1f MB/s (%llu bytes, "
                  "%llu packets)\n",
                  mmap ? "mmap  " : "stream", jobs, run.mb_per_s(),
                  static_cast<unsigned long long>(run.bytes),
                  static_cast<unsigned long long>(run.packets));
      if (run.mb_per_s() > bench.headline_mb_per_s) {
        bench.headline_mb_per_s = run.mb_per_s();
      }
      bench.runs.push_back(run);
    }
  }
  return bench;
}

constexpr std::size_t kIngestSessions = 64;

IngestBench measure_ingest_workload(int reps) {
  std::printf("building %zu-session ingest workload...\n", kIngestSessions);
  const PcapFile trace = make_trace(kIngestSessions);
  const std::string tmp = "BENCH_ingest.tmp.pcap";
  if (!write_pcap_file(tmp, trace)) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return {};
  }
  IngestBench bench = bench_ingest_stage(tmp, reps);
  std::remove(tmp.c_str());
  return bench;
}

// Minimal scanner for the two numbers the gate needs from the committed
// baseline: find `"key":` and parse the number after it. Good enough for
// JSON this benchmark wrote itself.
bool scan_number(const std::string& json, const std::string& key,
                 double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  out = std::strtod(json.c_str() + at + needle.size(), nullptr);
  return true;
}

// Multi-job scaling assertion: with enough real cores, mmap jobs=8 must not
// be slower than 90% of mmap jobs=1 — a pool that serializes or contends its
// way below the serial reader is a regression. On small runners (< 4 cores)
// the parallel numbers measure the scheduler, not the code, so the check is
// SKIPPED out loud instead of silently passing.
constexpr unsigned kMinCoresForScaling = 4;
constexpr double kScalingFloor = 0.9;

// "pass", "fail", or "skipped_lt4cores" — recorded in the gate's JSON so a
// 1-core CI runner can never masquerade as having exercised the check.
std::string check_parallel_scaling(const IngestBench& bench, unsigned cores,
                                   bool& ok) {
  const IngestRun* mmap1 = nullptr;
  const IngestRun* mmap8 = nullptr;
  for (const IngestRun& run : bench.runs) {
    if (run.mmap && run.jobs == 1) mmap1 = &run;
    if (run.mmap && run.jobs == 8) mmap8 = &run;
  }
  if (mmap1 == nullptr || mmap8 == nullptr || mmap1->mb_per_s() <= 0) {
    std::fprintf(stderr, "gate: scaling check has no mmap jobs=1/8 runs\n");
    ok = false;
    return "fail";
  }
  if (cores < kMinCoresForScaling) {
    std::printf(
        "gate: SKIP multi-job scaling check — %u core%s (< %u): parallel "
        "rates are not meaningful on this runner\n",
        cores, cores == 1 ? "" : "s", kMinCoresForScaling);
    return "skipped_lt4cores";
  }
  const double scaling = mmap8->mb_per_s() / mmap1->mb_per_s();
  std::printf("gate: scaling mmap jobs=8 vs jobs=1: %.3fx (floor %.2f)\n",
              scaling, kScalingFloor);
  if (scaling < kScalingFloor) {
    std::fprintf(stderr,
                 "gate: FAIL — mmap jobs=8 fell below %.0f%% of jobs=1 on a "
                 "%u-core runner\n",
                 kScalingFloor * 100, cores);
    ok = false;
    return "fail";
  }
  return "pass";
}

int run_gate(const std::string& baseline_path, double min_ratio) {
  std::FILE* f = std::fopen(baseline_path.c_str(), "rb");
  if (!f) {
    std::fprintf(stderr, "gate: cannot read %s\n", baseline_path.c_str());
    return 1;
  }
  std::string json;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
  std::fclose(f);

  double base_cores = 0, base_headline = 0;
  if (!scan_number(json, "cpu_cores", base_cores) ||
      !scan_number(json, "headline_ingest_mb_per_s", base_headline) ||
      base_headline <= 0) {
    std::fprintf(stderr,
                 "gate: %s has no usable headline_ingest_mb_per_s — "
                 "regenerate the baseline with this binary\n",
                 baseline_path.c_str());
    return 1;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const IngestBench bench = measure_ingest_workload(3);
  if (!bench.agree || bench.headline_mb_per_s <= 0) {
    std::fprintf(stderr, "gate: ingest measurement failed\n");
    return 1;
  }
  const double ratio = bench.headline_mb_per_s / base_headline;
  std::printf("gate: current %.1f MB/s vs baseline %.1f MB/s "
              "(ratio %.3f, floor %.2f)\n",
              bench.headline_mb_per_s, base_headline, ratio, min_ratio);

  bool ok = true;
  const bool comparable = static_cast<unsigned>(base_cores) == cores;
  if (!comparable) {
    std::printf("gate: baseline recorded on %u cores, this runner has %u — "
                "headline comparison is advisory only\n",
                static_cast<unsigned>(base_cores), cores);
  } else if (ratio < min_ratio) {
    std::fprintf(stderr,
                 "gate: FAIL — ingest throughput regressed below %.0f%% of "
                 "the committed baseline\n",
                 min_ratio * 100);
    ok = false;
  }
  const std::string scaling = check_parallel_scaling(bench, cores, ok);

  // Record what this gate run actually measured — and, crucially, how many
  // cores it measured on — so CI artifacts can't pass off a 1-core run as a
  // scaling-verified one.
  if (std::FILE* gf = std::fopen("BENCH_gate.json", "w")) {
    std::fprintf(gf,
                 "{\n  \"cpu_cores\": %u,\n  \"baseline_cpu_cores\": %u,\n"
                 "  \"headline_ingest_mb_per_s\": %.1f,\n"
                 "  \"baseline_headline_mb_per_s\": %.1f,\n"
                 "  \"headline_ratio\": %.3f,\n"
                 "  \"headline_comparable\": %s,\n"
                 "  \"scaling_check\": \"%s\",\n"
                 "  \"pass\": %s\n}\n",
                 cores, static_cast<unsigned>(base_cores),
                 bench.headline_mb_per_s, base_headline, ratio,
                 comparable ? "true" : "false", scaling.c_str(),
                 ok ? "true" : "false");
    std::fclose(gf);
    std::printf("gate: wrote BENCH_gate.json (cpu_cores=%u, scaling=%s)\n",
                cores, scaling.c_str());
  }
  std::printf("gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--gate") {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: pipeline_throughput --gate BASELINE.json "
                   "[--min-ratio R]\n");
      return 1;
    }
    double min_ratio = 0.9;
    if (argc > 4 && std::string(argv[3]) == "--min-ratio") {
      min_ratio = std::strtod(argv[4], nullptr);
    }
    return run_gate(argv[2], min_ratio);
  }

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("cpu cores: %u, alloc hook: %s\n", cores,
              alloc_hook_active() ? "on" : "off");

  std::vector<SizeResult> sizes;
  bool all_identical = true;
  for (const std::size_t sessions : {16, 64, 256}) {
    const int reps = sessions >= 256 ? 2 : 3;
    std::printf("building %zu-session trace (%zu prefixes each)...\n",
                sessions, kPrefixes);
    const PcapFile trace = make_trace(sessions);
    SizeResult size;
    size.sessions = sessions;
    size.records = trace.records.size();
    size.trace_bytes = 24;  // pcap global header, matching bytes_ingested
    for (const auto& rec : trace.records) {
      size.trace_bytes += 16 + rec.data.size();
    }

    std::string baseline;
    for (const std::size_t jobs : {1, 2, 4, 8}) {
      AnalyzerOptions opts;
      opts.jobs = jobs;
      RunResult run;
      run.jobs = jobs;
      run.best_wall_s = 1e100;
      for (int rep = 0; rep < reps; ++rep) {
        const HistogramSnapshot a0 = allocs_since({});
        const auto t0 = std::chrono::steady_clock::now();
        const TraceAnalysis ta = analyze_trace(trace, opts);
        const double wall = wall_seconds_since(t0);
        if (wall < run.best_wall_s) {
          run.best_wall_s = wall;
          run.stats = ta.stats;
          run.allocs = allocs_since(a0);
        }
        if (rep == 0) {
          if (jobs == 1) {
            baseline = fingerprint(ta);
          } else {
            run.identical = fingerprint(ta) == baseline;
          }
        }
      }
      all_identical = all_identical && run.identical;
      size.runs.push_back(run);
      print_run("analyze_trace", run, reps);
    }

    // The streaming path, through an actual file.
    const std::string tmp_pcap = out_path + ".tmp.pcap";
    size.streamed.jobs = 8;
    size.streamed.best_wall_s = 1e100;
    if (write_pcap_file(tmp_pcap, trace)) {
      AnalyzerOptions opts;
      opts.jobs = 8;
      for (int rep = 0; rep < reps; ++rep) {
        const HistogramSnapshot a0 = allocs_since({});
        const auto t0 = std::chrono::steady_clock::now();
        auto ta = analyze_file(tmp_pcap, opts);
        const double wall = wall_seconds_since(t0);
        if (!ta.ok()) break;
        size.streamed_ok = true;
        if (wall < size.streamed.best_wall_s) {
          size.streamed.best_wall_s = wall;
          size.streamed.stats = ta.value().stats;
          size.streamed.allocs = allocs_since(a0);
        }
        if (rep == 0) {
          size.streamed.identical = fingerprint(ta.value()) == baseline;
        }
      }
      std::remove(tmp_pcap.c_str());
      all_identical = all_identical && size.streamed.identical;
      print_run("analyze_file", size.streamed, reps);
    }

    const double speedup =
        size.runs.front().best_wall_s / size.runs.back().best_wall_s;
    std::printf("sessions=%zu speedup jobs=8 vs jobs=1: %.2fx\n", sessions,
                speedup);
    sizes.push_back(std::move(size));
  }
  std::printf("all outputs identical to serial: %s\n",
              all_identical ? "yes" : "NO");

  const IngestBench ingest = measure_ingest_workload(5);
  std::printf("headline ingest rate: %.1f MB/s\n", ingest.headline_mb_per_s);
  all_identical = all_identical && ingest.agree;

  // speedup table on stdout, one row per workload size
  std::printf("\n%10s %10s %10s %10s %10s %8s\n", "sessions", "jobs=1",
              "jobs=2", "jobs=4", "jobs=8", "speedup");
  for (const SizeResult& size : sizes) {
    std::printf("%10zu %9.3fs %9.3fs %9.3fs %9.3fs %7.2fx\n", size.sessions,
                size.runs[0].best_wall_s, size.runs[1].best_wall_s,
                size.runs[2].best_wall_s, size.runs[3].best_wall_s,
                size.runs[0].best_wall_s / size.runs[3].best_wall_s);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"cpu_cores\": %u,\n"
               "  \"parallel_rates_meaningful\": %s,\n"
               "  \"alloc_hook\": %s,\n"
               "  \"prefixes_per_session\": %zu,\n  \"sizes\": [\n",
               cores, cores >= kMinCoresForScaling ? "true" : "false",
               alloc_hook_active() ? "true" : "false", kPrefixes);
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const SizeResult& size = sizes[s];
    std::fprintf(f,
                 "    {\"sessions\": %zu, \"records\": %zu, \"bytes\": %llu,\n"
                 "     \"runs\": [\n",
                 size.sessions, size.records,
                 static_cast<unsigned long long>(size.trace_bytes));
    for (std::size_t i = 0; i < size.runs.size(); ++i) {
      const RunResult& run = size.runs[i];
      std::fprintf(f,
                   "      {\"jobs\": %zu, \"best_wall_s\": %.6f, "
                   "\"identical_to_serial\": %s, \"allocs_per_conn\": %s, "
                   "\"stats\": %s}%s\n",
                   run.jobs, run.best_wall_s, run.identical ? "true" : "false",
                   alloc_json(run.allocs).c_str(), run.stats.to_json().c_str(),
                   i + 1 < size.runs.size() ? "," : "");
    }
    std::fprintf(f, "     ],\n");
    if (size.streamed_ok) {
      std::fprintf(f,
                   "     \"streaming\": {\"jobs\": %zu, \"best_wall_s\": %.6f,"
                   " \"identical_to_serial\": %s, \"allocs_per_conn\": %s, "
                   "\"stats\": %s},\n",
                   size.streamed.jobs, size.streamed.best_wall_s,
                   size.streamed.identical ? "true" : "false",
                   alloc_json(size.streamed.allocs).c_str(),
                   size.streamed.stats.to_json().c_str());
    }
    std::fprintf(f, "     \"speedup_jobs8_vs_jobs1\": %.4f}%s\n",
                 size.runs.front().best_wall_s / size.runs.back().best_wall_s,
                 s + 1 < sizes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ingest_stage\": {\n    \"sessions\": %zu,\n"
               "    \"runs\": [\n", kIngestSessions);
  for (std::size_t i = 0; i < ingest.runs.size(); ++i) {
    const IngestRun& run = ingest.runs[i];
    std::fprintf(f,
                 "      {\"reader\": \"%s\", \"jobs\": %zu, "
                 "\"mb_per_s\": %.1f, \"bytes\": %llu, \"packets\": %llu}%s\n",
                 run.mmap ? "mmap" : "stream", run.jobs, run.mb_per_s(),
                 static_cast<unsigned long long>(run.bytes),
                 static_cast<unsigned long long>(run.packets),
                 i + 1 < ingest.runs.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n  \"headline_ingest_mb_per_s\": %.1f,\n",
               ingest.headline_mb_per_s);
  std::fprintf(f, "  \"all_outputs_identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
