// Pipeline throughput: end-to-end analyze_trace over a 16-session capture at
// 1/2/4/8 analysis workers, plus the streaming analyze_file path, emitting a
// machine-readable BENCH_pipeline.json (path overridable via argv[1]).
//
// Besides the wall times it verifies the determinism contract: every job
// count must produce byte-identical analysis output (JSON export of every
// connection's report and all 34 series) to the jobs=1 serial baseline.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

constexpr std::size_t kSessions = 16;
constexpr std::size_t kPrefixes = 10'000;
constexpr int kRepetitions = 3;

PcapFile make_trace() {
  SimWorld world(7777);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    SessionSpec spec;
    // Vary the bottleneck so connections cost unequal analysis time — the
    // realistic (and scheduling-hostile) case for the index-handout pool.
    if (i % 4 == 1) spec.up_fwd.random_loss = 0.005;
    if (i % 4 == 2) spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    if (i % 4 == 3) {
      spec.bgp.timer_driven = true;
      spec.bgp.timer_interval = 200 * kMicrosPerMilli;
      spec.bgp.msgs_per_tick = 60;
    }
    Rng rng(8100 + 13 * i);
    TableGenConfig tg;
    tg.prefix_count = kPrefixes;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Full analysis output as one string: byte-identity across job counts is
// the acceptance check, so include everything observable per connection.
std::string fingerprint(const TraceAnalysis& ta) {
  std::string out;
  for (const ConnectionAnalysis& conn : ta.results) {
    out += analysis_to_json(conn);
    out += registry_to_json(conn.series());
  }
  return out;
}

struct RunResult {
  std::size_t jobs = 0;
  double best_wall_s = 0;
  PipelineStats stats;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  std::printf("building %zu-session trace (%zu prefixes each)...\n", kSessions,
              kPrefixes);
  const PcapFile trace = make_trace();
  std::uint64_t trace_bytes = 0;
  for (const auto& rec : trace.records) trace_bytes += 16 + rec.data.size();

  std::string baseline;
  std::vector<RunResult> runs;
  for (const std::size_t jobs : {1, 2, 4, 8}) {
    AnalyzerOptions opts;
    opts.jobs = jobs;
    RunResult run;
    run.jobs = jobs;
    run.best_wall_s = 1e100;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const TraceAnalysis ta = analyze_trace(trace, opts);
      const double wall = wall_seconds_since(t0);
      if (wall < run.best_wall_s) {
        run.best_wall_s = wall;
        run.stats = ta.stats;
      }
      if (rep == 0) {
        if (jobs == 1) {
          baseline = fingerprint(ta);
        } else {
          run.identical = fingerprint(ta) == baseline;
        }
      }
    }
    runs.push_back(run);
    std::printf("jobs=%zu: %.3fs best of %d (ingest %.3fs + analyze %.3fs), "
                "identical=%s\n",
                jobs, run.best_wall_s, kRepetitions,
                to_seconds(run.stats.ingest_wall),
                to_seconds(run.stats.analyze_wall),
                run.identical ? "yes" : "NO");
  }

  // The streaming path, through an actual file.
  const std::string tmp_pcap = out_path + ".tmp.pcap";
  RunResult streamed;
  streamed.jobs = 8;
  streamed.best_wall_s = 1e100;
  if (write_pcap_file(tmp_pcap, trace)) {
    AnalyzerOptions opts;
    opts.jobs = 8;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto ta = analyze_file(tmp_pcap, opts);
      const double wall = wall_seconds_since(t0);
      if (!ta.ok()) break;
      if (wall < streamed.best_wall_s) {
        streamed.best_wall_s = wall;
        streamed.stats = ta.value().stats;
      }
      if (rep == 0) streamed.identical = fingerprint(ta.value()) == baseline;
    }
    std::remove(tmp_pcap.c_str());
    std::printf("analyze_file jobs=8: %.3fs best of %d, identical=%s\n",
                streamed.best_wall_s, kRepetitions,
                streamed.identical ? "yes" : "NO");
  }

  const double speedup = runs.front().best_wall_s / runs.back().best_wall_s;
  bool all_identical = streamed.identical;
  for (const RunResult& r : runs) all_identical = all_identical && r.identical;
  std::printf("speedup jobs=8 vs jobs=1: %.2fx; outputs identical: %s\n",
              speedup, all_identical ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"trace\": {\"sessions\": %zu, \"prefixes_per_session\":"
               " %zu, \"records\": %zu, \"bytes\": %llu},\n  \"runs\": [\n",
               kSessions, kPrefixes, trace.records.size(),
               static_cast<unsigned long long>(trace_bytes));
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f,
                 "    {\"jobs\": %zu, \"best_wall_s\": %.6f, "
                 "\"identical_to_serial\": %s, \"stats\": %s}%s\n",
                 runs[i].jobs, runs[i].best_wall_s,
                 runs[i].identical ? "true" : "false",
                 runs[i].stats.to_json().c_str(),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"streaming\": {\"jobs\": %zu, \"best_wall_s\": %.6f,"
               " \"identical_to_serial\": %s, \"stats\": %s},\n",
               streamed.jobs, streamed.best_wall_s,
               streamed.identical ? "true" : "false",
               streamed.stats.to_json().c_str());
  std::fprintf(f,
               "  \"speedup_jobs8_vs_jobs1\": %.4f,\n"
               "  \"all_outputs_identical\": %s\n}\n",
               speedup, all_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
