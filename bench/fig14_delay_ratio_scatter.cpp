// Figure 14: scatter of sender-side (Rs) vs receiver-side (Rr) delay ratios
// per table transfer, for each trace. Paper: ISP_A-1 clusters at Rs 0.4-0.9
// (sender-bound); ISP_A-2 spreads along Rs + Rr ~= 1; RouteViews is more
// spread out; Rn ~= 0 almost everywhere. Printed as a 2D character density
// plot plus the raw points.
#include "bench_util.hpp"

namespace {

void scatter(const tdat::FleetResult& fleet) {
  using namespace tdat;
  constexpr int kBins = 20;
  int grid[kBins][kBins] = {};
  double rn_sum = 0;
  std::size_t n = 0;
  for (const TransferRecord& t : fleet.transfers) {
    if (t.analysis.transfer.empty()) continue;
    const double rs = t.analysis.report.ratio(FactorGroup::kSender);
    const double rr = t.analysis.report.ratio(FactorGroup::kReceiver);
    rn_sum += t.analysis.report.ratio(FactorGroup::kNetwork);
    const int x = std::min(kBins - 1, static_cast<int>(rs * kBins));
    const int y = std::min(kBins - 1, static_cast<int>(rr * kBins));
    ++grid[y][x];
    ++n;
  }
  std::printf("%s  (n=%zu, mean Rn=%.3f)\n", fleet.config.name.c_str(), n,
              n ? rn_sum / static_cast<double>(n) : 0.0);
  std::printf("  Rr\n");
  for (int y = kBins - 1; y >= 0; --y) {
    std::printf("  %3.1f |", static_cast<double>(y) / kBins);
    for (int x = 0; x < kBins; ++x) {
      const int c = grid[y][x];
      std::printf("%c", c == 0 ? '.' : (c < 3 ? '+' : (c < 8 ? 'o' : '#')));
    }
    std::printf("|\n");
  }
  std::printf("       0.0%*s1.0  Rs\n\n", kBins - 3, "");
}

}  // namespace

// The paper's solid-square markers: transfers known to be triggered by a
// sender or receiver reset (inferred there with [9]; ground truth here).
// Expectation: "the triggering end could account more on the table
// transfer delay".
void trigger_correlation(const tdat::FleetResult& fleet) {
  using namespace tdat;
  struct Cell {
    std::size_t n = 0;
    std::size_t sender_major = 0;
    std::size_t receiver_major = 0;
  };
  Cell by_trigger[2];  // 0 = sender-triggered, 1 = receiver-triggered
  for (const TransferRecord& t : fleet.transfers) {
    if (t.analysis.transfer.empty()) continue;
    if (t.truth.trigger == Trigger::kUnknown) continue;
    Cell& c = by_trigger[t.truth.trigger == Trigger::kReceiverReset ? 1 : 0];
    ++c.n;
    if (t.analysis.report.major(FactorGroup::kSender)) ++c.sender_major;
    if (t.analysis.report.major(FactorGroup::kReceiver)) ++c.receiver_major;
  }
  std::printf("  trigger correlation (%s):\n", fleet.config.name.c_str());
  const char* names[2] = {"sender-reset", "receiver-reset"};
  for (int i = 0; i < 2; ++i) {
    const Cell& c = by_trigger[i];
    if (c.n == 0) continue;
    std::printf("    %-15s n=%-4zu sender-major %4.0f%%  receiver-major"
                " %4.0f%%\n",
                names[i], c.n, 100.0 * static_cast<double>(c.sender_major) / static_cast<double>(c.n),
                100.0 * static_cast<double>(c.receiver_major) / static_cast<double>(c.n));
  }
  std::printf("\n");
}

int main() {
  using namespace tdat;
  bench::print_header(
      "Figure 14 — sender (Rs) vs receiver (Rr) delay-ratio scatter", "Fig. 14");
  for (int i = 0; i < 3; ++i) scatter(bench::dataset(i));
  std::printf("solid-square markers: does the triggering end dominate?\n");
  for (int i = 0; i < 3; ++i) trigger_correlation(bench::dataset(i));
  return 0;
}
