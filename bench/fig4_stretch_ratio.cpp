// Figure 4: CDF of the stretch ratio — per router, the longest transfer
// duration divided by the shortest (same table). Paper: routers commonly
// stretch 2-5x (22% / 59% / 100% of routers under 2-5x in ISP_A-1 /
// ISP_A-2 / RV respectively), with an order of magnitude in the tail.
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 4 — stretch of table transfers per router",
                      "Fig. 4");
  for (int i = 0; i < 3; ++i) {
    const FleetResult& fleet = bench::dataset(i);
    std::map<std::size_t, std::vector<double>> by_router;
    for (const TransferRecord& t : fleet.transfers) {
      const double d = to_seconds(t.analysis.transfer_duration());
      if (d > 0) by_router[t.router].push_back(d);
    }
    std::vector<double> stretch;
    for (const auto& [router, durations] : by_router) {
      // Paper: routers with more than two transfers.
      if (durations.size() < 3) continue;
      const auto [mn, mx] = std::minmax_element(durations.begin(), durations.end());
      if (*mn > 0) stretch.push_back(*mx / *mn);
    }
    bench::print_cdf(fleet.config.name + " stretch ratio", stretch);
    std::size_t over5 = 0;
    for (double s : stretch) over5 += s > 5.0 ? 1 : 0;
    if (!stretch.empty()) {
      std::printf("  routers stretched >5x: %zu/%zu\n\n", over5, stretch.size());
    }
  }
  return 0;
}
