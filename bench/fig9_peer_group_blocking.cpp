// Figure 9: session failure and peer-group blocking. Two collector sessions
// share a peer group; one collector fails at t1. The router retransmits to
// the dead peer until the BGP hold timer expires at t2, and — because the
// group queue clears only on delivery to ALL members — the healthy session
// is paused for the whole (t2 - t1) interval, exchanging only keepalives.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/detectors.hpp"
#include "core/series_names.hpp"
#include "sim/peer_group.hpp"
#include "timerange/render.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 9 — session failure and peer-group blocking",
                      "Fig. 9");

  SimWorld world(909);
  Rng rng(910);
  TableGenConfig tg;
  tg.prefix_count = 40'000;
  PeerGroup group(serialize_updates(generate_table(tg, rng)), 40);

  SessionSpec healthy;  // the Quagga session of Fig. 9
  SessionSpec doomed;   // the Vendor session that fails at t1
  doomed.receiver_ip = 0x0a09090a;
  // The paper's ISP_A hold time: 180 s.
  healthy.bgp.hold_time = 180 * kMicrosPerSec;
  doomed.bgp.hold_time = 180 * kMicrosPerSec;
  healthy.bgp.keepalive_interval = 30 * kMicrosPerSec;
  doomed.bgp.keepalive_interval = 30 * kMicrosPerSec;
  healthy.collector.keepalive_interval = 30 * kMicrosPerSec;
  doomed.collector.keepalive_interval = 30 * kMicrosPerSec;
  doomed.sender_tcp.send_buf_capacity = 8 * 1024;
  const auto a_id = world.add_session(healthy, &group);
  const auto b_id = world.add_session(doomed, &group);
  world.start_session(a_id, 0);
  world.start_session(b_id, 0);

  const Micros t1 = kMicrosPerSec;  // collector failure
  world.run_until(t1);
  world.receiver(b_id).die();
  world.run_until(600 * kMicrosPerSec);

  const Micros t2 = world.sender(b_id).failed_at();
  std::printf("t1 (collector failure) = %.1f s, t2 (hold timer fired) = %.1f s\n",
              to_seconds(t1), to_seconds(t2));
  std::printf("healthy member finished at %.1f s\n\n",
              to_seconds(world.sender(a_id).finished_at()));

  const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
  const auto& first = ta.results.at(0);
  const auto& second = ta.results.at(1);
  const auto& victim =
      first.bundle.flow.stream_length > second.bundle.flow.stream_length ? first
                                                                         : second;
  const auto& failed = &victim == &first ? second : first;

  const auto blocked = detect_peer_group_blocking(victim, failed);
  std::printf("detected blocking: %s, blocked time %.1f s (expected ~ t2-t1 = %.1f s)\n",
              blocked.detected ? "yes" : "no", to_seconds(blocked.blocked_time),
              to_seconds(t2 - t1));
  for (const TimeRange& e : blocked.episodes) {
    std::printf("  episode [%.1f s, %.1f s]\n", to_seconds(e.begin),
                to_seconds(e.end));
  }

  // Square-wave view across the failure (Fig. 9's two-connection picture).
  const TimeRange window{0, std::min<Micros>(t2 + 60 * kMicrosPerSec,
                                             400 * kMicrosPerSec)};
  EventSeries victim_tx =
      victim.series().get(series::kTransmission).renamed("Healthy.Tx");
  EventSeries failed_retx =
      failed.series().get(series::kRetransmission).renamed("Failed.Retx");
  EventSeries victim_ka =
      victim.series().get(series::kKeepAliveOnly).renamed("Healthy.KAonly");
  std::printf("\n%s\n",
              render_series({&victim_tx, &failed_retx, &victim_ka}, window).c_str());
  return 0;
}
