// Figure 11: example TCP trace and derived event series, rendered as the
// paper's "binary square curves". The scenario mixes window-bounded flights
// with an upstream loss episode, like the paper's example.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/series_names.hpp"
#include "timerange/render.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 11 — example TCP trace as event series", "Fig. 11");

  SimWorld world(1111);
  SessionSpec spec;
  spec.receiver_tcp.recv_buf_capacity = 16 * 1024;  // window-bounded flights
  spec.up_fwd.propagation_delay = 20 * kMicrosPerMilli;
  spec.up_rev.propagation_delay = 20 * kMicrosPerMilli;
  spec.up_fwd.random_loss = 0.015;  // occasional upstream loss
  Rng rng(1112);
  TableGenConfig tg;
  tg.prefix_count = 6000;
  const auto session = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
  world.start_session(session, 0);
  world.run_until(300 * kMicrosPerSec);

  const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
  const auto& a = ta.results.at(0);

  std::printf("series sizes over the transfer (%.2f s):\n",
              to_seconds(a.transfer_duration()));
  for (const char* name :
       {series::kTransmission, series::kOutstanding, series::kSendAppLimited,
        series::kUpstreamLoss, series::kDownstreamLoss, series::kAdvBndOut,
        series::kCwndBndOut}) {
    const auto& s = a.series().get(name);
    std::printf("  %-16s events=%4zu  covered=%8.3f s\n", name, s.count(),
                to_seconds(s.ranges().size_within(a.transfer)));
  }

  std::printf("\n%s\n",
              render_series({&a.series().get(series::kTransmission),
                             &a.series().get(series::kSendAppLimited),
                             &a.series().get(series::kUpstreamLoss),
                             &a.series().get(series::kDownstreamLoss),
                             &a.series().get(series::kCwndBndOut),
                             &a.series().get(series::kAdvBndOut)},
                            a.transfer)
                  .c_str());

  // CSV of the series for external plotting (first rows).
  const std::string csv = series_to_csv({&a.series().get(series::kUpstreamLoss)});
  std::printf("UpstreamLoss series as CSV (cross-reference to trace packets):\n%s",
              csv.substr(0, 500).c_str());
  return 0;
}
