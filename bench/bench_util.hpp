// Shared helpers for the experiment binaries: CDF printing and fleet
// caching (several experiments read the same three datasets).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/fleet.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tdat::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

// Prints an empirical CDF as "value fraction" rows, thinned for readability.
inline void print_cdf(const std::string& label, const std::vector<double>& xs,
                      std::size_t points = 12) {
  if (xs.empty()) {
    std::printf("%s: (no samples)\n", label.c_str());
    return;
  }
  std::printf("%s  (n=%zu)\n", label.c_str(), xs.size());
  for (const CdfPoint& p : thin_cdf(empirical_cdf(xs), points)) {
    std::printf("  %10.2f  %5.1f%%\n", p.value, p.fraction * 100.0);
  }
}

// The three paper datasets, simulated once per process.
inline const FleetResult& dataset(int which) {
  static const FleetResult a1 = run_fleet(isp_a1_config());
  static const FleetResult a2 = run_fleet(isp_a2_config());
  static const FleetResult rv = run_fleet(rv_config());
  switch (which) {
    case 0: return a1;
    case 1: return a2;
    default: return rv;
  }
}

}  // namespace tdat::bench
