// Micro-benchmarks for the RangeSet data structure: the §V-C ablation. The
// original T-DAT stored time ranges as Perl big-integer sets (one bit per
// microsecond); the interval representation is asymptotically smaller and
// faster. BM_BitmapUnion shows what the per-microsecond representation
// costs on the same workload.
#include <benchmark/benchmark.h>

#include "timerange/range_set.hpp"
#include "util/rng.hpp"

namespace {

using tdat::Micros;
using tdat::RangeSet;

RangeSet make_set(std::uint64_t seed, int n, Micros domain) {
  tdat::Rng rng(seed);
  RangeSet s;
  for (int i = 0; i < n; ++i) {
    const Micros b = rng.uniform(0, domain);
    s.insert(b, b + rng.uniform(1, domain / n));
  }
  return s;
}

void BM_InsertAppend(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RangeSet s;
    for (int i = 0; i < n; ++i) {
      s.insert(i * 10, i * 10 + 5);
    }
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InsertAppend)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_InsertRandom(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_set(7, n, 10'000'000));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InsertRandom)->Arg(1'000)->Arg(10'000);

void BM_Union(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const RangeSet a = make_set(1, n, 100'000'000);
  const RangeSet b = make_set(2, n, 100'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.set_union(b));
  }
}
BENCHMARK(BM_Union)->Arg(100)->Arg(1'000)->Arg(10'000);

void BM_Intersection(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const RangeSet a = make_set(3, n, 100'000'000);
  const RangeSet b = make_set(4, n, 100'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.set_intersection(b));
  }
}
BENCHMARK(BM_Intersection)->Arg(100)->Arg(1'000)->Arg(10'000);

void BM_Difference(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const RangeSet a = make_set(5, n, 100'000'000);
  const RangeSet b = make_set(6, n, 100'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.set_difference(b));
  }
}
BENCHMARK(BM_Difference)->Arg(1'000);

void BM_PointQuery(benchmark::State& state) {
  const RangeSet a = make_set(8, 10'000, 100'000'000);
  tdat::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.contains(rng.uniform(0, 100'000'000)));
  }
}
BENCHMARK(BM_PointQuery);

// Ablation: the per-microsecond bitmap the Perl prototype effectively used.
// Same logical union, three orders of magnitude more work per second of
// covered trace time.
void BM_BitmapUnion(benchmark::State& state) {
  const Micros domain = state.range(0);
  std::vector<bool> a(static_cast<std::size_t>(domain)), b(a);
  tdat::Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<std::size_t>(rng.uniform(0, domain - 1000));
    for (std::size_t j = s; j < s + 1000; ++j) (i % 2 ? a : b)[j] = true;
  }
  for (auto _ : state) {
    std::vector<bool> u(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) u[i] = a[i] || b[i];
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_BitmapUnion)->Arg(1'000'000)->Arg(10'000'000);

}  // namespace

BENCHMARK_MAIN();
