// Observability overhead: what the metrics/trace/log instrumentation costs,
// measured at both ends of the stack. Micro: ns/op for a disarmed and armed
// trace span, a counter increment, a histogram observation, and a
// filtered-out log call. Macro: end-to-end analyze_trace wall time on a
// multi-session capture with tracing disarmed vs armed. Emits a
// machine-readable BENCH_observability.json (path overridable via argv[1]).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "sim/world.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace {

using namespace tdat;

constexpr std::size_t kSessions = 8;
constexpr std::size_t kPrefixes = 6'000;
constexpr int kRepetitions = 3;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ns per iteration of `fn` over `iters` calls.
template <typename Fn>
double measure_ns(std::size_t iters, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  return wall_seconds_since(t0) * 1e9 / static_cast<double>(iters);
}

PcapFile make_trace() {
  SimWorld world(20120613);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    SessionSpec spec;
    if (i % 3 == 1) spec.up_fwd.random_loss = 0.005;
    if (i % 3 == 2) spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    Rng rng(4242 + 17 * i);
    TableGenConfig tg;
    tg.prefix_count = kPrefixes;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

double best_analyze_seconds(const PcapFile& trace, bool traced) {
  AnalyzerOptions opts;
  opts.jobs = 4;
  double best = 1e18;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    if (traced) trace_start();
    const auto t0 = std::chrono::steady_clock::now();
    const TraceAnalysis ta = analyze_trace(trace, opts);
    const double s = wall_seconds_since(t0);
    if (traced) {
      const std::string json = trace_stop_json();
      if (json.empty()) std::printf("(empty trace?)\n");
    }
    if (ta.results.empty()) std::printf("(no connections?)\n");
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_observability.json";

  // --- micro: per-operation costs -----------------------------------------
  // Disarmed span: one relaxed load of the session flag.
  const double span_disarmed_ns =
      measure_ns(5'000'000, [](std::size_t) { TDAT_TRACE_SPAN("bench.off"); });

  // Armed span: two clock reads plus a thread-local vector append. Drain the
  // session between batches so buffers stay small.
  trace_start();
  const double span_armed_ns =
      measure_ns(200'000, [](std::size_t) { TDAT_TRACE_SPAN("bench.on"); });
  const std::string drained = trace_stop_json();

  Counter& counter = metrics().counter("bench.counter");
  const double counter_ns =
      measure_ns(20'000'000, [&](std::size_t) { counter.inc(); });

  LatencyHistogram& hist = metrics().histogram("bench.histogram");
  const double histogram_ns = measure_ns(
      20'000'000,
      [&](std::size_t i) { hist.observe(static_cast<std::int64_t>(i & 0x3ff)); });

  // A log call below the active level: atomic load + branch, no formatting.
  set_log_level(LogLevel::kWarn);
  const double log_filtered_ns = measure_ns(
      10'000'000, [](std::size_t i) { TDAT_LOG_DEBUG("dropped %zu", i); });

  std::printf("micro (ns/op): span disarmed %.2f, span armed %.1f,"
              " counter %.2f, histogram %.2f, filtered log %.2f\n",
              span_disarmed_ns, span_armed_ns, counter_ns, histogram_ns,
              log_filtered_ns);
  std::printf("  (armed-span batch produced %zu bytes of trace JSON)\n",
              drained.size());

  // --- macro: end-to-end analysis, disarmed vs armed ----------------------
  std::printf("building %zu-session trace (%zu prefixes each)...\n", kSessions,
              kPrefixes);
  const PcapFile trace = make_trace();
  std::printf("  %zu records\n", trace.records.size());

  const double plain_s = best_analyze_seconds(trace, /*traced=*/false);
  const double traced_s = best_analyze_seconds(trace, /*traced=*/true);
  const double overhead_pct =
      plain_s > 0 ? (traced_s / plain_s - 1.0) * 100.0 : 0.0;
  std::printf("analyze_trace jobs=4: disarmed %.3fs, armed %.3fs"
              " (%+.1f%%)\n", plain_s, traced_s, overhead_pct);

  std::string json = "{\n  \"micro_ns_per_op\": {";
  json += "\n    \"trace_span_disarmed\": " + json_double(span_disarmed_ns);
  json += ",\n    \"trace_span_armed\": " + json_double(span_armed_ns);
  json += ",\n    \"counter_inc\": " + json_double(counter_ns);
  json += ",\n    \"histogram_observe\": " + json_double(histogram_ns);
  json += ",\n    \"log_filtered\": " + json_double(log_filtered_ns);
  json += "\n  },\n  \"analyze_trace_jobs4\": {";
  json += "\n    \"sessions\": " + std::to_string(kSessions);
  json += ",\n    \"records\": " + std::to_string(trace.records.size());
  json += ",\n    \"disarmed_wall_s\": " + json_double(plain_s);
  json += ",\n    \"armed_wall_s\": " + json_double(traced_s);
  json += ",\n    \"overhead_pct\": " + json_double(overhead_pct);
  json += "\n  }\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
