// Figure 5: a slice of a table transfer showing prolonged inter-packet gaps
// (much longer than the RTT) caused by the sender's timer-driven pacing.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/series_names.hpp"
#include "timerange/render.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 5 — gaps in a timer-paced table transfer", "Fig. 5");

  SimWorld world(505);
  SessionSpec spec;
  spec.bgp.timer_driven = true;
  spec.bgp.timer_interval = 200 * kMicrosPerMilli;
  spec.bgp.msgs_per_tick = 60;
  Rng rng(506);
  TableGenConfig tg;
  tg.prefix_count = 3000;
  const auto session = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
  world.start_session(session, 0);
  world.run_until(120 * kMicrosPerSec);

  const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
  const auto& a = ta.results.at(0);
  std::printf("RTT estimate: %.1f ms; transfer duration: %.2f s\n\n",
              to_millis(a.profile.rtt()), to_seconds(a.transfer_duration()));

  // Gap histogram between data packets: the RTT-scale ack clock vs the
  // 200 ms application timer.
  std::vector<double> gaps_ms;
  Micros prev = -1;
  for (const auto& lp : a.bundle.flow.data) {
    if (prev >= 0) gaps_ms.push_back(to_millis(lp.ts - prev));
    prev = lp.ts;
  }
  const Histogram h = make_histogram(gaps_ms, 0.0, 400.0, 16);
  std::printf("inter-packet gap histogram (ms):\n");
  for (std::size_t b = 0; b < h.bins.size(); ++b) {
    if (h.bins[b] == 0) continue;
    std::printf("  %5.0f-%5.0f ms: %4zu %s\n", h.lo + 25.0 * static_cast<double>(b),
                h.lo + 25.0 * static_cast<double>(b + 1), h.bins[b],
                std::string(std::min<std::size_t>(h.bins[b], 60), '*').c_str());
  }

  // Square-wave view of a 5-second slice (the "example piece" of Fig. 5).
  const TimeRange window{a.transfer.begin, a.transfer.begin + 5 * kMicrosPerSec};
  std::printf("\n%s\n",
              render_series({&a.series().get(series::kTransmission),
                             &a.series().get(series::kSendAppLimited),
                             &a.series().get(series::kOutstanding)},
                            window)
                  .c_str());
  return 0;
}
