// Figure 3: CDF of table transfer duration for the three traces. Paper:
// most transfers finish within a few minutes; ISP_A (Quagga) and RouteViews
// are slower (50th pct ~2.5 min, 80th ~5 min at full 300k-prefix scale);
// some transfers exceed 10 minutes. At our ~1/100 table scale the absolute
// durations shrink proportionally, but the ordering (Quagga/RV slower than
// ISP_A-1) and the heavy tail must hold.
#include "bench_util.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 3 — CDF of table transfer duration (seconds)",
                      "Fig. 3");
  for (int i = 0; i < 3; ++i) {
    const FleetResult& fleet = bench::dataset(i);
    bench::print_cdf(fleet.config.name, fleet.durations_seconds());
    std::printf("\n");
  }

  // Key percentiles side by side.
  TextTable t({"Trace", "p50 (s)", "p80 (s)", "p95 (s)", "max (s)"});
  for (int i = 0; i < 3; ++i) {
    const FleetResult& fleet = bench::dataset(i);
    auto d = fleet.durations_seconds();
    if (d.empty()) continue;
    t.add_row({fleet.config.name, fmt_double(percentile(d, 50), 2),
               fmt_double(percentile(d, 80), 2), fmt_double(percentile(d, 95), 2),
               fmt_double(percentile(d, 100), 2)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
