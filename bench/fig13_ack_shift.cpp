// Figure 13: the ACK-shifting step. Shows a receiver-side trace before and
// after shifting ACK flights by their minimum d2 estimate: the shifted
// trace approximates sender-side arrival order.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/ack_shift.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 13 — shifting ACK flights by d2_min", "Figs. 12-13");

  SimWorld world(1313);
  SessionSpec spec;
  spec.receiver_tcp.recv_buf_capacity = 16 * 1024;  // window-bound: clean flights
  spec.up_fwd.propagation_delay = 30 * kMicrosPerMilli;
  spec.up_rev.propagation_delay = 30 * kMicrosPerMilli;
  Rng rng(1314);
  TableGenConfig tg;
  tg.prefix_count = 2000;
  const auto session = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
  world.start_session(session, 0);
  world.run_until(120 * kMicrosPerSec);

  const auto conns = split_connections(decode_pcap(world.take_trace()));
  const auto& conn = conns.at(0);
  const auto profile = compute_profile(conn);
  const auto shifted = shift_acks(conn, profile, AnalyzerOptions{});

  std::printf("RTT %.1f ms; shifted %zu ACK flights; max shift %.1f ms\n\n",
              to_millis(profile.rtt()), shifted.flights_shifted,
              to_millis(shifted.max_shift));

  std::printf("%-10s %-12s %-12s %-10s\n", "pkt", "capture(ms)", "shifted(ms)",
              "shift(ms)");
  std::size_t shown = 0;
  for (std::size_t i = 0; i < conn.packets.size() && shown < 25; ++i) {
    const DecodedPacket& pkt = conn.packets[i];
    const bool is_ack = packet_dir(conn.key, pkt) != profile.data_dir &&
                        pkt.tcp.flags.ack && !pkt.tcp.flags.syn;
    if (!is_ack && !pkt.has_payload()) continue;
    const Micros delta = shifted.ts[i] - pkt.ts;
    std::printf("%-10s %12.3f %12.3f %10.3f\n",
                is_ack ? "ACK" : "DATA", to_millis(pkt.ts),
                to_millis(shifted.ts[i]), to_millis(delta));
    ++shown;
  }
  std::printf("\nData packets never move; each ACK flight moves forward as one\n"
              "unit by its most precise (minimum) d2 estimate.\n");
  return 0;
}
