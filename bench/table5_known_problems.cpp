// Table V: identifying the known §II problems across whole datasets, with
// the average delay each introduces. Paper: timer gaps in 857/74/7 transfers
// (avg 7.3-19.4 s); consecutive losses in 2092/176/29 (avg 4.5-31 s, with
// RouteViews much slower due to aggressive RTO backoff); peer-group
// blocking rare (8/8/3) but ~90-135 s each.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/detectors.hpp"
#include "sim/peer_group.hpp"

namespace {

// Dedicated peer-group runs (the fleet datasets are single-session per
// trace): simulate a few groups per dataset profile, one of which fails.
struct PgStats {
  std::size_t detected = 0;
  tdat::Micros total_delay = 0;
};

PgStats peer_group_runs(std::uint64_t seed, tdat::Micros hold_time,
                        std::size_t runs) {
  using namespace tdat;
  PgStats out;
  for (std::size_t i = 0; i < runs; ++i) {
    SimWorld world(seed + i);
    Rng rng(seed + 100 + i);
    TableGenConfig tg;
    tg.prefix_count = 30'000;
    PeerGroup group(serialize_updates(generate_table(tg, rng)), 40);
    SessionSpec healthy;
    SessionSpec doomed;
    doomed.receiver_ip = 0x0a09090a;
    healthy.bgp.hold_time = hold_time;
    doomed.bgp.hold_time = hold_time;
    healthy.bgp.keepalive_interval = 30 * kMicrosPerSec;
    doomed.bgp.keepalive_interval = 30 * kMicrosPerSec;
    healthy.collector.keepalive_interval = 30 * kMicrosPerSec;
    doomed.collector.keepalive_interval = 30 * kMicrosPerSec;
    doomed.sender_tcp.send_buf_capacity = 8 * 1024;
    const auto a = world.add_session(healthy, &group);
    const auto b = world.add_session(doomed, &group);
    world.start_session(a, 0);
    world.start_session(b, 0);
    // Kill the collector early in the transfer (it runs ~1 s unimpaired).
    world.run_until(kMicrosPerSec / 5);
    world.receiver(b).die();
    world.run_until(600 * kMicrosPerSec);

    const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
    if (ta.results.size() != 2) continue;
    const auto& victim = ta.results[0].bundle.flow.stream_length >
                                 ta.results[1].bundle.flow.stream_length
                             ? ta.results[0]
                             : ta.results[1];
    const auto& failed = &victim == &ta.results[0] ? ta.results[1] : ta.results[0];
    const auto res = detect_peer_group_blocking(victim, failed);
    if (res.detected) {
      ++out.detected;
      out.total_delay += res.blocked_time;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace tdat;
  bench::print_header(
      "Table V — known problems identified, with average introduced delay",
      "Table V");

  TextTable t({"Trace", "Transfers", "TimerGaps", "avg delay(s)", "ConsecLoss",
               "avg delay(s)", "PeerGroupBlock", "avg delay(s)"});
  for (int i = 0; i < 3; ++i) {
    const FleetResult& fleet = bench::dataset(i);
    std::size_t timer_n = 0, consec_n = 0;
    Micros timer_delay = 0, consec_delay = 0;
    for (const TransferRecord& rec : fleet.transfers) {
      const auto& a = rec.analysis;
      if (a.transfer.empty()) continue;
      const auto tg = detect_timer_gaps(a.series(), a.transfer);
      if (tg.detected) {
        ++timer_n;
        timer_delay += tg.introduced_delay;
      }
      const auto cl = detect_consecutive_losses(a.series(), a.transfer);
      if (cl.detected) {
        ++consec_n;
        consec_delay += cl.introduced_delay;
      }
    }
    // Peer-group blocking: 3 dedicated two-member group runs per dataset.
    const PgStats pg =
        peer_group_runs(5000 + static_cast<std::uint64_t>(i) * 17,
                        180 * kMicrosPerSec, 3);

    auto avg = [](Micros total, std::size_t n) {
      return n == 0 ? std::string("-")
                    : fmt_double(to_seconds(total) / static_cast<double>(n), 2);
    };
    t.add_row({fleet.config.name, std::to_string(fleet.transfers.size()),
               std::to_string(timer_n), avg(timer_delay, timer_n),
               std::to_string(consec_n), avg(consec_delay, consec_n),
               std::to_string(pg.detected), avg(pg.total_delay, pg.detected)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected shape: timer gaps and consecutive losses are common but\n"
              "cheap (seconds); peer-group blocking is rare but costs minutes\n"
              "(bounded by the 180 s hold time).\n");
  return 0;
}
