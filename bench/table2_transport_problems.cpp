// Table II: transport problems observed in the sampled slow transfers.
// Paper (172 sampled slow transfers): 25 with timer gaps, 58 with
// consecutive retransmissions, 15 with peer-group blocking. Here the
// sampling rule is the paper's: per router, transfers slower than
// mean + 3*stddev; if none, the router's slowest. Detection runs T-DAT's
// detectors; ground-truth columns show what was actually injected.
#include <map>

#include "bench_util.hpp"
#include "core/detectors.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Table II — transport problems in sampled slow transfers",
                      "Table II");

  // "(trait)" columns count sampled transfers whose router HAS the trait;
  // a trait does not always manifest (a timer-paced or collector-throttled
  // sender never overruns the interface queue, so no loss burst occurs).
  TextTable t({"Trace", "Sampled", "TimerGaps", "(trait)", "ConsecRetx",
               "(trait)", "ZeroAckBug", "(trait)"});
  for (int i = 0; i < 3; ++i) {
    const FleetResult& fleet = bench::dataset(i);
    // Group durations per router to apply the mean+3sigma sampling rule.
    std::map<std::size_t, std::vector<const TransferRecord*>> by_router;
    for (const TransferRecord& rec : fleet.transfers) {
      by_router[rec.router].push_back(&rec);
    }
    std::vector<const TransferRecord*> sampled;
    for (const auto& [router, recs] : by_router) {
      std::vector<double> d;
      for (const auto* r : recs) d.push_back(to_seconds(r->analysis.transfer_duration()));
      const Summary s = summarize(d);
      const double cut = s.mean + 3 * s.stddev;
      const TransferRecord* slowest = nullptr;
      bool any = false;
      for (const auto* r : recs) {
        const double dur = to_seconds(r->analysis.transfer_duration());
        if (dur > cut && dur > 0) {
          sampled.push_back(r);
          any = true;
        }
        if (slowest == nullptr ||
            dur > to_seconds(slowest->analysis.transfer_duration())) {
          slowest = r;
        }
      }
      if (!any && slowest != nullptr) sampled.push_back(slowest);
    }

    std::size_t timer_det = 0, timer_gt = 0;
    std::size_t consec_det = 0, consec_gt = 0;
    std::size_t bug_det = 0, bug_gt = 0;
    for (const auto* rec : sampled) {
      const auto& a = rec->analysis;
      if (detect_timer_gaps(a.series(), a.transfer).detected) ++timer_det;
      if (rec->truth.timer) ++timer_gt;
      if (detect_consecutive_losses(a.series(), a.transfer).detected) ++consec_det;
      if (rec->truth.local_loss || rec->truth.net_loss) ++consec_gt;
      if (detect_zero_ack_bug(a.series(), a.transfer).detected) ++bug_det;
      if (rec->truth.probe_bug) ++bug_gt;
    }
    t.add_row({fleet.config.name, std::to_string(sampled.size()),
               std::to_string(timer_det), std::to_string(timer_gt),
               std::to_string(consec_det), std::to_string(consec_gt),
               std::to_string(bug_det), std::to_string(bug_gt)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nPeer-group blocking is exercised separately (fig9_peer_group_blocking,\n"
              "table5_known_problems): it needs multi-connection scenarios.\n");
  return 0;
}
