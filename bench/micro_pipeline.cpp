// End-to-end throughput of the analysis pipeline (§V-C): the Perl prototype
// processed the 47 GB RouteViews trace in 64 minutes — 26 seconds per TCP
// connection on average. These benches measure our per-stage and full-
// pipeline cost on a synthetic transfer of realistic shape.
#include <benchmark/benchmark.h>

#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

PcapFile make_trace(std::size_t prefixes) {
  SimWorld world(4242);
  SessionSpec spec;
  spec.up_fwd.random_loss = 0.005;  // some loss so every stage has work
  Rng rng(4243);
  TableGenConfig tg;
  tg.prefix_count = prefixes;
  const auto s = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
  world.start_session(s, 0);
  world.run_until(600 * kMicrosPerSec);
  return world.take_trace();
}

void BM_Simulate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_trace(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_Simulate)->Arg(2'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_PcapDecode(benchmark::State& state) {
  const PcapFile trace = make_trace(5'000);
  std::uint64_t bytes = 0;
  for (const auto& r : trace.records) bytes += r.data.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_pcap(trace));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PcapDecode)->Unit(benchmark::kMillisecond);

void BM_PcapDecodeVerifyChecksums(benchmark::State& state) {
  const PcapFile trace = make_trace(5'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_pcap(trace, true));
  }
}
BENCHMARK(BM_PcapDecodeVerifyChecksums)->Unit(benchmark::kMillisecond);

void BM_FullAnalysis(benchmark::State& state) {
  // The headline number: seconds per analyzed connection, to set against
  // the paper's 26 s/connection in Perl.
  const PcapFile trace = make_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_trace(trace, AnalyzerOptions{}));
  }
  state.counters["connections"] = 1;
}
BENCHMARK(BM_FullAnalysis)->Arg(2'000)->Arg(10'000)->Arg(40'000)
    ->Unit(benchmark::kMillisecond);

void BM_SeriesOnly(benchmark::State& state) {
  const PcapFile trace = make_trace(10'000);
  const auto conns = split_connections(decode_pcap(trace));
  const auto profile = compute_profile(conns.at(0));
  const AnalyzerOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_series(conns[0], profile, opts));
  }
}
BENCHMARK(BM_SeriesOnly)->Unit(benchmark::kMillisecond);

void BM_MessageExtraction(benchmark::State& state) {
  const PcapFile trace = make_trace(10'000);
  const auto conns = split_connections(decode_pcap(trace));
  const auto profile = compute_profile(conns.at(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_bgp_messages(conns[0], profile.data_dir));
  }
}
BENCHMARK(BM_MessageExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
