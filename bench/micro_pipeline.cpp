// End-to-end throughput of the analysis pipeline (§V-C): the Perl prototype
// processed the 47 GB RouteViews trace in 64 minutes — 26 seconds per TCP
// connection on average. These benches measure our per-stage and full-
// pipeline cost on a synthetic transfer of realistic shape.
#include <benchmark/benchmark.h>

#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "pcap/pcap_stream.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

PcapFile make_trace(std::size_t prefixes) {
  SimWorld world(4242);
  SessionSpec spec;
  spec.up_fwd.random_loss = 0.005;  // some loss so every stage has work
  Rng rng(4243);
  TableGenConfig tg;
  tg.prefix_count = prefixes;
  const auto s = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
  world.start_session(s, 0);
  world.run_until(600 * kMicrosPerSec);
  return world.take_trace();
}

// Several independent sessions in one capture, for the parallel-analysis
// benches (the workload the paper's 47 GB RouteViews trace represents:
// many concurrent transfers, one file).
PcapFile make_multi_trace(std::size_t sessions, std::size_t prefixes) {
  SimWorld world(7100 + sessions);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    if (i % 3 == 1) spec.up_fwd.random_loss = 0.005;
    if (i % 3 == 2) spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    Rng rng(7200 + 31 * i);
    TableGenConfig tg;
    tg.prefix_count = prefixes;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

void BM_Simulate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_trace(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_Simulate)->Arg(2'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_PcapDecode(benchmark::State& state) {
  const PcapFile trace = make_trace(5'000);
  std::uint64_t bytes = 0;
  for (const auto& r : trace.records) bytes += r.data.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_pcap(trace));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PcapDecode)->Unit(benchmark::kMillisecond);

void BM_PcapDecodeVerifyChecksums(benchmark::State& state) {
  const PcapFile trace = make_trace(5'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_pcap(trace, true));
  }
}
BENCHMARK(BM_PcapDecodeVerifyChecksums)->Unit(benchmark::kMillisecond);

void BM_FullAnalysis(benchmark::State& state) {
  // The headline number: seconds per analyzed connection, to set against
  // the paper's 26 s/connection in Perl.
  const PcapFile trace = make_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_trace(trace, AnalyzerOptions{}));
  }
  state.counters["connections"] = 1;
}
BENCHMARK(BM_FullAnalysis)->Arg(2'000)->Arg(10'000)->Arg(40'000)
    ->Unit(benchmark::kMillisecond);

void BM_ParsePcap(benchmark::State& state) {
  // Legacy in-memory parse: one owning vector per record (now with an exact
  // capacity pre-scan).
  const auto image = serialize_pcap(make_trace(5'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_pcap(image));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_ParsePcap)->Unit(benchmark::kMillisecond);

void BM_StreamPcap(benchmark::State& state) {
  // Chunked arena ingest: records are spans into reused chunk buffers, no
  // per-record allocation.
  const auto image = serialize_pcap(make_trace(5'000));
  for (auto _ : state) {
    auto stream = PcapStream::from_memory(image);
    StreamRecord rec;
    std::uint64_t seen = 0;
    while (stream.value().next(rec)) seen += rec.data.size();
    benchmark::DoNotOptimize(seen);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_StreamPcap)->Unit(benchmark::kMillisecond);

void BM_ParallelAnalyze(benchmark::State& state) {
  // End-to-end analyze_trace on a 8-session capture at Arg(jobs) workers.
  // jobs=1 is the serial baseline the speedup criterion compares against.
  static const PcapFile& trace = *new PcapFile(make_multi_trace(8, 2'000));
  AnalyzerOptions opts;
  opts.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_trace(trace, opts));
  }
  state.counters["jobs"] = static_cast<double>(opts.jobs);
}
BENCHMARK(BM_ParallelAnalyze)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_DecodeThreads(benchmark::State& state) {
  // Frame decoding is pure per-record work; ->Threads shows how it scales
  // when several captures are decoded concurrently.
  static const PcapFile& trace = *new PcapFile(make_trace(5'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_pcap(trace));
  }
}
BENCHMARK(BM_DecodeThreads)->Threads(1)->Threads(2)->Threads(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SeriesOnly(benchmark::State& state) {
  const PcapFile trace = make_trace(10'000);
  const auto conns = split_connections(decode_pcap(trace));
  const auto profile = compute_profile(conns.at(0));
  const AnalyzerOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_series(conns[0], profile, opts));
  }
}
BENCHMARK(BM_SeriesOnly)->Unit(benchmark::kMillisecond);

void BM_MessageExtraction(benchmark::State& state) {
  const PcapFile trace = make_trace(10'000);
  const auto conns = split_connections(decode_pcap(trace));
  const auto profile = compute_profile(conns.at(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_bgp_messages(conns[0], profile.data_dir));
  }
}
BENCHMARK(BM_MessageExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
