// Figure 17: inferring BGP pacing timers from the gap-length distribution.
// Paper: sorted gap lengths show a knee at the timer value; observed timers
// cluster at 80/100/200/400 ms with 200 ms most prevalent. We sweep those
// four timers, print the sorted-gap curve around the knee, and tabulate
// inferred vs configured (plus the fleet-wide inferred-timer census).
#include <map>

#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/detectors.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 17 — inferring BGP timers from gap distribution",
                      "Fig. 17");

  TextTable t({"Configured (ms)", "Inferred (ms)", "Gaps", "Delay (s)"});
  for (int timer_ms : {80, 100, 200, 400}) {
    SimWorld world(1700 + static_cast<std::uint64_t>(timer_ms));
    SessionSpec spec;
    spec.bgp.timer_driven = true;
    spec.bgp.timer_interval = from_millis(timer_ms);
    spec.bgp.msgs_per_tick = 60;
    Rng rng(1800 + static_cast<std::uint64_t>(timer_ms));
    TableGenConfig tg;
    tg.prefix_count = 8000;
    const auto s = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
    world.start_session(s, 0);
    world.run_until(600 * kMicrosPerSec);

    const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
    const auto& a = ta.results.at(0);
    const auto res = detect_timer_gaps(a.series(), a.transfer);
    t.add_row({std::to_string(timer_ms),
               res.detected ? fmt_double(to_millis(res.timer), 1) : "-",
               std::to_string(res.gap_count),
               fmt_double(to_seconds(res.introduced_delay), 2)});

    if (timer_ms == 200 && res.detected) {
      std::printf("sorted gap-length curve for the 200 ms case (ms):\n");
      const auto& curve = res.sorted_gaps_ms;
      const std::size_t step = std::max<std::size_t>(1, curve.size() / 15);
      for (std::size_t i = 0; i < curve.size(); i += step) {
        std::printf("  #%3zu: %8.1f\n", i, curve[i]);
      }
      std::printf("\n");
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Census across the three datasets, like the small table inside Fig. 17.
  std::printf("inferred timers across datasets (count by rounded value):\n");
  for (int i = 0; i < 3; ++i) {
    const FleetResult& fleet = bench::dataset(i);
    std::map<long, std::size_t> census;
    for (const TransferRecord& rec : fleet.transfers) {
      const auto res = detect_timer_gaps(rec.analysis.series(), rec.analysis.transfer);
      if (!res.detected) continue;
      // Round to the nearest of the plausible vendor values.
      long best = 0;
      for (long v : {80L, 100L, 200L, 400L}) {
        if (best == 0 || std::abs(to_millis(res.timer) - static_cast<double>(v)) <
                             std::abs(to_millis(res.timer) - static_cast<double>(best))) {
          best = v;
        }
      }
      ++census[best];
    }
    std::printf("  %-18s:", fleet.config.name.c_str());
    for (const auto& [v, n] : census) std::printf("  %ldms x%zu", v, n);
    std::printf("\n");
  }
  return 0;
}
