// Fleet scaling: merged-archive throughput of `tdat fleet` style runs at
// 1/2/4 workers over a multi-session capture, emitting BENCH_fleet.json
// (path overridable via argv[1]).
//
// Every fleet run's merged .tdagg is compared byte-for-byte against the
// single-process whole-capture archive — a scaling number for output that
// differs from the serial truth would be worthless, so any mismatch makes
// the benchmark exit non-zero. cpu_cores is recorded honestly: on runners
// with fewer cores than workers the per-worker rates measure scheduling
// overhead, not scaling, and readers of the JSON can see that.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "agg/sink.hpp"
#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "core/trace_source.hpp"
#include "fleet/coordinator.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

constexpr std::size_t kSessions = 32;
constexpr std::size_t kPrefixes = 5'000;
constexpr char kRunId[] = "bench-fleet";

PcapFile make_trace() {
  SimWorld world(4242);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    SessionSpec spec;
    if (i % 4 == 1) spec.up_fwd.random_loss = 0.005;
    if (i % 4 == 2) spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    Rng rng(9300 + 17 * i);
    TableGenConfig tg;
    tg.prefix_count = kPrefixes;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct FleetRun {
  std::size_t workers = 0;
  double best_wall_s = 1e100;
  bool identical = false;
  fleet::FleetStats stats;  // from the best run
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("cpu cores: %u\n", cores);

  std::printf("building %zu-session trace (%zu prefixes each)...\n", kSessions,
              kPrefixes);
  const PcapFile trace = make_trace();
  const std::string tmp_pcap = out_path + ".tmp.pcap";
  if (!write_pcap_file(tmp_pcap, trace)) {
    std::fprintf(stderr, "cannot write %s\n", tmp_pcap.c_str());
    return 1;
  }

  // The serial truth: one process, whole capture, same run id.
  std::string whole;
  double whole_wall_s = 1e100;
  std::uint64_t capture_bytes = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto source = PcapStreamSource::open(tmp_pcap, false);
    if (!source.ok()) {
      std::fprintf(stderr, "open: %s\n", source.error().c_str());
      std::remove(tmp_pcap.c_str());
      return 1;
    }
    AnalyzerOptions opts;
    opts.jobs = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const TraceAnalysis analysis = run_pipeline(source.value(), opts);
    const ReportModel model = build_report_model(analysis);
    whole = agg::build_archive(model, kRunId).serialize();
    const double wall = wall_seconds_since(t0);
    if (wall < whole_wall_s) whole_wall_s = wall;
    capture_bytes = analysis.stats.bytes_ingested;
  }
  std::printf("whole-capture archive: %zu bytes in %.3fs (%.1f MB/s)\n",
              whole.size(), whole_wall_s,
              static_cast<double>(capture_bytes) / whole_wall_s / 1e6);

  std::vector<FleetRun> runs;
  bool all_identical = true;
  for (const std::size_t workers : {1, 2, 4}) {
    FleetRun run;
    run.workers = workers;
    for (int rep = 0; rep < 3; ++rep) {
      fleet::FleetOptions opts;
      opts.workers = workers;
      opts.run_id = kRunId;
      const auto t0 = std::chrono::steady_clock::now();
      auto outcome = fleet::run_fleet(tmp_pcap, opts);
      const double wall = wall_seconds_since(t0);
      if (!outcome.ok()) {
        std::fprintf(stderr, "fleet workers=%zu: %s\n", workers,
                     outcome.error().c_str());
        std::remove(tmp_pcap.c_str());
        return 1;
      }
      if (rep == 0) {
        run.identical = outcome.value().archive.serialize() == whole;
      }
      if (wall < run.best_wall_s) {
        run.best_wall_s = wall;
        run.stats = std::move(outcome.value().stats);
      }
    }
    all_identical = all_identical && run.identical;
    std::printf(
        "fleet workers=%zu: %.3fs best of 3, %.1f MB/s aggregate, "
        "%zu shards, identical=%s\n",
        workers, run.best_wall_s, run.stats.bytes_per_sec() / 1e6,
        run.stats.shards, run.identical ? "yes" : "NO");
    runs.push_back(std::move(run));
  }
  std::remove(tmp_pcap.c_str());
  std::printf("all merged archives identical to whole-capture: %s\n",
              all_identical ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"cpu_cores\": %u,\n"
               "  \"parallel_rates_meaningful\": %s,\n"
               "  \"sessions\": %zu,\n  \"prefixes_per_session\": %zu,\n"
               "  \"capture_bytes\": %llu,\n"
               "  \"whole_capture_wall_s\": %.6f,\n  \"runs\": [\n",
               cores, cores >= 4 ? "true" : "false", kSessions, kPrefixes,
               static_cast<unsigned long long>(capture_bytes), whole_wall_s);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const FleetRun& run = runs[i];
    std::fprintf(f,
                 "    {\"workers\": %zu, \"best_wall_s\": %.6f, "
                 "\"aggregate_mb_per_s\": %.1f, \"shards\": %zu, "
                 "\"reassignments\": %zu, \"plan_wall_s\": %.6f, "
                 "\"identical_to_whole\": %s,\n     \"per_worker\": [",
                 run.workers, run.best_wall_s,
                 run.stats.bytes_per_sec() / 1e6, run.stats.shards,
                 run.stats.reassignments,
                 static_cast<double>(run.stats.plan_wall_us) / 1e6,
                 run.identical ? "true" : "false");
    for (std::size_t w = 0; w < run.stats.per_worker.size(); ++w) {
      const fleet::WorkerStats& ws = run.stats.per_worker[w];
      std::fprintf(f,
                   "%s{\"worker\": %u, \"shards\": %zu, \"records\": %llu, "
                   "\"mb_per_s\": %.1f}",
                   w == 0 ? "" : ", ", ws.worker_id, ws.shards_done,
                   static_cast<unsigned long long>(ws.records),
                   ws.bytes_per_sec() / 1e6);
    }
    std::fprintf(f, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"all_identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
