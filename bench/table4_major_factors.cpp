// Table IV: distribution of major delay factors (threshold: 30% of transfer
// duration), with per-factor breakdown inside each major group. Paper shape:
// sender-side major for 83%/67%/84% of transfers; receiver-side second;
// network rare; within ISP_A the BGP application dominates TCP 2:1-7:1,
// while RouteViews is the opposite (TCP window > BGP app) due to its 16 KB
// maximum window. Also prints the 0.3-vs-0.5 threshold ablation.
#include "bench_util.hpp"

namespace {

struct Counts {
  std::size_t transfers = 0;
  std::size_t group[tdat::kGroupCount] = {};
  std::size_t factor[tdat::kFactorCount] = {};
  std::size_t unknown = 0;
};

Counts tally(const tdat::FleetResult& fleet, double threshold) {
  using namespace tdat;
  Counts c;
  for (const TransferRecord& t : fleet.transfers) {
    if (t.analysis.transfer.empty()) continue;
    ++c.transfers;
    bool any = false;
    for (std::size_t g = 0; g < kGroupCount; ++g) {
      if (t.analysis.report.group_ratio[g] > threshold) {
        ++c.group[g];
        any = true;
        // Breakdown: the dominant factor within each major group.
        const Factor f = t.analysis.report.dominant_factor[g];
        ++c.factor[static_cast<std::size_t>(f)];
      }
    }
    if (!any) ++c.unknown;
  }
  return c;
}

}  // namespace

int main() {
  using namespace tdat;
  bench::print_header(
      "Table IV — distribution of major delay factors (threshold 30%)",
      "Table IV");

  TextTable t({"", "ISP_A-1", "ISP_A-2", "RV"});
  Counts counts[3];
  for (int i = 0; i < 3; ++i) counts[i] = tally(bench::dataset(i), 0.3);

  auto row = [&](const std::string& label, auto getter) {
    t.add_row({label, std::to_string(getter(counts[0])),
               std::to_string(getter(counts[1])),
               std::to_string(getter(counts[2]))});
  };
  row("Table transfers", [](const Counts& c) { return c.transfers; });
  row("Sender-side limited", [](const Counts& c) { return c.group[0]; });
  row("Receiver-side limited", [](const Counts& c) { return c.group[1]; });
  row("Network limited", [](const Counts& c) { return c.group[2]; });
  row("Unknown", [](const Counts& c) { return c.unknown; });
  row("-- BGP sender app", [](const Counts& c) {
    return c.factor[static_cast<std::size_t>(Factor::kBgpSenderApp)];
  });
  row("-- TCP congestion window", [](const Counts& c) {
    return c.factor[static_cast<std::size_t>(Factor::kTcpCongestionWindow)];
  });
  row("-- BGP receiver app", [](const Counts& c) {
    return c.factor[static_cast<std::size_t>(Factor::kBgpReceiverApp)];
  });
  row("-- TCP advertised window", [](const Counts& c) {
    return c.factor[static_cast<std::size_t>(Factor::kTcpAdvertisedWindow)];
  });
  row("-- Receiver local loss", [](const Counts& c) {
    return c.factor[static_cast<std::size_t>(Factor::kReceiverLocalLoss)];
  });
  row("-- Bandwidth limited", [](const Counts& c) {
    return c.factor[static_cast<std::size_t>(Factor::kBandwidthLimited)];
  });
  row("-- Network packet loss", [](const Counts& c) {
    return c.factor[static_cast<std::size_t>(Factor::kNetworkLoss)];
  });
  std::printf("%s\n", t.to_string().c_str());

  // Threshold ablation (§IV-A: 0.3..0.5 does not change the ranking).
  std::printf("threshold ablation (sender/receiver/network major counts):\n");
  for (double th : {0.3, 0.4, 0.5}) {
    std::printf("  threshold %.1f:", th);
    for (int i = 0; i < 3; ++i) {
      const Counts c = tally(bench::dataset(i), th);
      std::printf("  %s %zu/%zu/%zu", i == 0 ? "A1" : (i == 1 ? "A2" : "RV"),
                  c.group[0], c.group[1], c.group[2]);
    }
    std::printf("\n");
  }
  return 0;
}
