// Figure 6: a TCP connection experiencing episodes of consecutive packet
// retransmissions. Prints the retransmission timeline (time-sequence style)
// and the detected episodes.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/detectors.hpp"
#include "core/series_names.hpp"
#include "core/timeseq.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Figure 6 — consecutive retransmission episodes", "Fig. 6");

  SimWorld world(606);
  SessionSpec spec;
  spec.down_fwd.queue_packets = 10;
  spec.down_fwd.rate_bytes_per_sec = 2'000'000;
  spec.sender_tcp.initial_cwnd_segments = 36;
  Rng rng(607);
  TableGenConfig tg;
  tg.prefix_count = 9000;
  const auto session = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
  world.start_session(session, 0);
  world.run_until(300 * kMicrosPerSec);

  const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
  const auto& a = ta.results.at(0);
  const auto& retx = a.series().get(series::kRetransmission);
  std::printf("transfer: %.2f s, %zu retransmitted packets, recovery time %.2f s\n\n",
              to_seconds(a.transfer_duration()), retx.count(),
              to_seconds(retx.size()));
  std::printf("retransmission events (loss visible -> retx arrival):\n");
  std::size_t shown = 0;
  for (const Event& e : retx.events()) {
    std::printf("  t=%8.3fs  recover %7.1f ms  %4llu bytes\n",
                to_seconds(e.range.end), to_millis(e.range.length()),
                static_cast<unsigned long long>(e.bytes));
    if (++shown >= 15) {
      std::printf("  ... (%zu more)\n", retx.count() - shown);
      break;
    }
  }

  // The Fig. 6 time-sequence view around the first episode.
  if (!retx.events().empty()) {
    const Micros mid = retx.events().front().range.end;
    const TimeRange win{std::max(a.transfer.begin, mid - kMicrosPerSec),
                        mid + kMicrosPerSec};
    const auto& raw_conn = ta.connections.at(a.conn_index);
    std::printf("\n%s\n",
                render_time_sequence(raw_conn, a.bundle.flow, win).c_str());
  }

  const auto episodes = detect_consecutive_losses(a.series(), a.transfer);
  std::printf("\nconsecutive-loss episodes (>=8 packets): %zu, max run %zu,"
              " introduced delay %.2f s\n",
              episodes.episodes, episodes.max_consecutive,
              to_seconds(episodes.introduced_delay));
  return 0;
}
