// Aggregate-merge throughput: how fast `tdat aggregate` folds shard
// archives at fleet scale. Builds synthetic .tdagg archives (shape matched
// to real fleets: hundreds of connections per shard spread over many peers),
// then measures serialize, parse, and N-way merge, reporting archives/s and
// connection rows/s. Emits machine-readable BENCH_agg.json (path
// overridable via argv[1]).
//
// The benchmark also re-checks the order-independence contract on its own
// inputs (forward vs reverse merge order must serialize identically) so the
// committed numbers can never come from a merge that broke the algebra.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "agg/archive.hpp"
#include "agg/sketch.hpp"
#include "util/rng.hpp"

namespace {

using namespace tdat;
using namespace tdat::agg;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Archive synth_archive(Rng& rng, std::size_t connections, const char* run_id) {
  Archive a;
  for (std::size_t i = 0; i < connections; ++i) {
    ConnectionRecord c;
    c.run_id = run_id;
    c.collector_ip =
        0x0a090900 + static_cast<std::uint32_t>(rng.uniform(1, 4));
    c.peer_ip = 0x0a000000 + static_cast<std::uint32_t>(rng.uniform(1, 200));
    c.peer_as = static_cast<std::uint32_t>(64000 + rng.uniform(0, 50));
    c.key.ip_a = c.peer_ip;
    c.key.port_a = static_cast<std::uint16_t>(rng.uniform(1024, 65000));
    c.key.ip_b = c.collector_ip;
    c.key.port_b = 179;
    c.transfer_begin = rng.uniform(0, 1'000'000);
    c.transfer_end = c.transfer_begin + rng.uniform(1'000, 900'000'000);
    c.updates = static_cast<std::uint64_t>(rng.uniform(100, 30'000));
    c.prefixes = static_cast<std::uint64_t>(rng.uniform(1'000, 500'000));
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      c.factor_delay_us[f] = rng.uniform(0, c.transfer_us());
    }
    a.connections.push_back(std::move(c));
  }
  // Sketches the way the sink builds them: grouped by key, one observation
  // per transfer.
  for (const ConnectionRecord& c : a.connections) {
    const SketchKey key{c.run_id, c.collector_ip, c.peer_ip, c.peer_as};
    SketchGroup* g = nullptr;
    for (SketchGroup& existing : a.sketches) {
      if (existing.key == key) {
        g = &existing;
        break;
      }
    }
    if (g == nullptr) {
      a.sketches.emplace_back();
      a.sketches.back().key = key;
      g = &a.sketches.back();
    }
    sketch_observe(g->transfer_us, c.transfer_us());
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      sketch_observe(g->factor_delay_us[f], c.factor_delay_us[f]);
    }
  }
  a.normalize();
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_agg.json";
  constexpr std::size_t kShards = 64;
  constexpr std::size_t kConnsPerShard = 400;
  constexpr int kReps = 5;

  Rng rng(20120613);
  std::vector<Archive> shards;
  std::vector<std::string> images;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_conns = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::string run = "shard-" + std::to_string(s);
    shards.push_back(synth_archive(rng, kConnsPerShard, run.c_str()));
    images.push_back(shards.back().serialize());
    total_bytes += images.back().size();
    total_conns += shards.back().connections.size();
  }
  std::printf("fleet: %zu shard archives, %llu connection rows, %.1f MB\n",
              kShards, static_cast<unsigned long long>(total_conns),
              static_cast<double>(total_bytes) / 1e6);

  double best_parse = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const std::string& img : images) {
      const auto parsed = parse_archive(
          {reinterpret_cast<const std::uint8_t*>(img.data()), img.size()});
      if (!parsed.ok()) {
        std::fprintf(stderr, "parse failed: %s\n", parsed.error().c_str());
        return 1;
      }
    }
    best_parse = std::min(best_parse, wall_seconds_since(t0));
  }

  double best_merge = 1e100;
  std::string merged_bytes;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    Archive merged;
    for (const Archive& shard : shards) merged.merge_from(shard);
    merged_bytes = merged.serialize();
    best_merge = std::min(best_merge, wall_seconds_since(t0));
  }

  // Contract check: reverse merge order must produce identical bytes.
  Archive reversed;
  for (std::size_t s = shards.size(); s-- > 0;) {
    reversed.merge_from(shards[s]);
  }
  if (reversed.serialize() != merged_bytes) {
    std::fprintf(stderr, "FATAL: merge is not order-independent\n");
    return 1;
  }

  const double shards_per_sec = static_cast<double>(kShards) / best_merge;
  const double rows_per_sec = static_cast<double>(total_conns) / best_merge;
  const double parse_mbps =
      static_cast<double>(total_bytes) / best_parse / 1e6;
  std::printf("parse: %.1f MB/s over %zu archives\n", parse_mbps, kShards);
  std::printf("merge: %.3fs for %zu shards (%.0f archives/s,"
              " %.0f rows/s)\n",
              best_merge, kShards, shards_per_sec, rows_per_sec);

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\": \"agg_merge\", \"shards\": %zu,"
               " \"connection_rows\": %llu, \"archive_bytes\": %llu,"
               " \"parse_mb_per_s\": %.1f, \"merge_s\": %.4f,"
               " \"archives_per_s\": %.1f, \"rows_per_s\": %.0f}\n",
               kShards, static_cast<unsigned long long>(total_conns),
               static_cast<unsigned long long>(total_bytes), parse_mbps,
               best_merge, shards_per_sec, rows_per_sec);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
