// Header-decode microbenchmark: scalar decode_frame vs the batched SoA
// decoder (pcap/decode_batch.hpp) over the records of a simulated multi-
// session capture, with and without checksum verification, plus a
// mutated-input run (10% corrupt records) to show the reject path. Emits
// machine-readable BENCH_decode.json (path overridable via argv[1]).
//
// Both paths must accept the same records and produce the same packet
// count — a mismatch makes the benchmark exit non-zero, so the committed
// numbers can't drift away from the equivalence contract that
// tests/decode_batch_test.cpp enforces per field.
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bgp/table_gen.hpp"
#include "pcap/decode.hpp"
#include "pcap/decode_batch.hpp"
#include "pcap/pcap_file.hpp"
#include "pcap/pcap_stream.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

PcapFile make_trace(std::size_t sessions) {
  SimWorld world(4242);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    if (i % 3 == 1) spec.up_fwd.random_loss = 0.004;
    Rng rng(900 + 7 * i);
    TableGenConfig tg;
    tg.prefix_count = 6000;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 40 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return world.take_trace();
}

std::vector<StreamRecord> as_records(const PcapFile& file) {
  std::vector<StreamRecord> recs;
  recs.reserve(file.records.size());
  for (const PcapRecord& r : file.records) {
    recs.push_back({r.ts, r.orig_len, std::span<const std::uint8_t>(r.data),
                    nullptr});
  }
  return recs;
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct DecodeResult {
  double best_s = 1e100;
  std::size_t packets = 0;
};

DecodeResult bench_scalar(const std::vector<StreamRecord>& recs, bool verify,
                          int reps) {
  DecodeResult res;
  std::vector<DecodedPacket> pkts;
  for (int rep = 0; rep < reps; ++rep) {
    pkts.clear();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i].data.size() < recs[i].orig_len) continue;
      if (auto pkt =
              decode_frame(recs[i].ts, i, recs[i].data, verify, recs[i].arena)) {
        pkts.push_back(std::move(*pkt));
      }
    }
    const double wall = wall_seconds_since(t0);
    if (wall < res.best_s) res.best_s = wall;
  }
  res.packets = pkts.size();
  return res;
}

DecodeResult bench_batch(const std::vector<StreamRecord>& recs, bool verify,
                         int reps) {
  DecodeResult res;
  DecodeScratch scratch;
  std::vector<DecodedPacket> pkts;
  const std::span<const StreamRecord> span(recs);
  for (int rep = 0; rep < reps; ++rep) {
    pkts.clear();
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t off = 0;
    while (off < span.size()) {
      off += decode_records(span.subspan(off), off, verify, scratch, pkts);
    }
    const double wall = wall_seconds_since(t0);
    if (wall < res.best_s) res.best_s = wall;
  }
  res.packets = pkts.size();
  return res;
}

struct Case {
  const char* name;
  DecodeResult scalar;
  DecodeResult batch;
  std::uint64_t frame_bytes = 0;
  std::size_t records = 0;
};

double mbps(std::uint64_t bytes, double secs) {
  return secs > 0 ? static_cast<double>(bytes) / secs / 1e6 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_decode.json";
  constexpr int kReps = 7;

  const PcapFile trace = make_trace(24);
  std::vector<StreamRecord> clean = as_records(trace);
  std::uint64_t frame_bytes = 0;
  for (const auto& r : clean) frame_bytes += r.data.size();
  std::printf("trace: %zu records, %llu frame bytes\n", clean.size(),
              static_cast<unsigned long long>(frame_bytes));

  // A copy with ~10% of records corrupted at a header byte: the reject path
  // must stay cheap, not just the accept path.
  PcapFile dirty_file = trace;
  for (std::size_t i = 0; i < dirty_file.records.size(); i += 10) {
    auto& data = dirty_file.records[i].data;
    const std::size_t off = 12 + (i / 10) % 42;
    if (off < data.size()) data[off] ^= 0xff;
  }
  std::vector<StreamRecord> dirty = as_records(dirty_file);

  std::vector<Case> cases;
  const struct {
    const char* name;
    const std::vector<StreamRecord>* recs;
    bool verify;
  } specs[] = {
      {"clean", &clean, false},
      {"clean_verify", &clean, true},
      {"corrupt10", &dirty, false},
  };
  bool agree = true;
  for (const auto& spec : specs) {
    Case c;
    c.name = spec.name;
    c.records = spec.recs->size();
    for (const auto& r : *spec.recs) c.frame_bytes += r.data.size();
    c.scalar = bench_scalar(*spec.recs, spec.verify, kReps);
    c.batch = bench_batch(*spec.recs, spec.verify, kReps);
    if (c.scalar.packets != c.batch.packets) agree = false;
    std::printf(
        "%-13s scalar %8.1f MB/s, batch %8.1f MB/s (%.2fx), "
        "packets %zu/%zu %s\n",
        c.name, mbps(c.frame_bytes, c.scalar.best_s),
        mbps(c.frame_bytes, c.batch.best_s), c.scalar.best_s / c.batch.best_s,
        c.scalar.packets, c.batch.packets,
        c.scalar.packets == c.batch.packets ? "" : "MISMATCH");
    cases.push_back(c);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"reps\": %d,\n  \"cases\": [\n", kReps);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"records\": %zu, "
                 "\"frame_bytes\": %llu,\n"
                 "     \"scalar_mb_per_s\": %.1f, \"batch_mb_per_s\": %.1f, "
                 "\"speedup\": %.3f,\n"
                 "     \"scalar_packets\": %zu, \"batch_packets\": %zu}%s\n",
                 c.name, c.records,
                 static_cast<unsigned long long>(c.frame_bytes),
                 mbps(c.frame_bytes, c.scalar.best_s),
                 mbps(c.frame_bytes, c.batch.best_s),
                 c.scalar.best_s / c.batch.best_s, c.scalar.packets,
                 c.batch.packets, i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"packet_counts_agree\": %s\n}\n",
               agree ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return agree ? 0 : 1;
}
