// Live engine latency: replay a multi-session capture through LiveEngine in
// bounded chunks — the always-on daemon's steady state — and measure what an
// operator of `tdat watch` experiences: per-epoch latency (ingest + dirty
// re-analysis), snapshot render latency, and end-to-end throughput against
// the one-shot batch pipeline. Emits BENCH_live.json (path overridable via
// argv[1]).
//
// The numbers are only reported after the keystone invariant is checked:
// the drained live engine's .tdagg snapshot must be byte-identical to the
// batch archive over the same capture, or the benchmark exits non-zero —
// latency of a pipeline that disagrees with the batch truth is worthless.
// cpu_cores is recorded honestly so readers can judge the parallel
// re-analysis numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "agg/sink.hpp"
#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "core/live.hpp"
#include "core/live_source.hpp"
#include "core/report.hpp"
#include "core/trace_source.hpp"
#include "pcap/pcap_file.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

constexpr std::size_t kSessions = 32;
constexpr std::size_t kPrefixes = 5'000;
constexpr std::size_t kChunk = 64 * 1024;   // bytes appended per epoch
constexpr std::size_t kSnapshotEvery = 16;  // epochs between renders

std::vector<std::uint8_t> make_image() {
  SimWorld world(4242);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    SessionSpec spec;
    if (i % 4 == 1) spec.up_fwd.random_loss = 0.005;
    if (i % 4 == 2) spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    Rng rng(9300 + 17 * i);
    TableGenConfig tg;
    tg.prefix_count = kPrefixes;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return serialize_pcap(world.take_trace());
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct LatencyStats {
  double mean_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

LatencyStats summarize(std::vector<double> samples_ms) {
  LatencyStats s;
  if (samples_ms.empty()) return s;
  double sum = 0;
  for (const double v : samples_ms) sum += v;
  s.mean_ms = sum / static_cast<double>(samples_ms.size());
  std::sort(samples_ms.begin(), samples_ms.end());
  s.p99_ms = samples_ms[samples_ms.size() * 99 / 100];
  s.max_ms = samples_ms.back();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_live.json";
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("cpu cores: %u\n", cores);
  agg::register_aggregate_sink();

  std::printf("building %zu-session trace (%zu prefixes each)...\n", kSessions,
              kPrefixes);
  const std::vector<std::uint8_t> image = make_image();
  std::printf("capture: %.1f MB\n", static_cast<double>(image.size()) / 1e6);

  // The batch truth and its wall time.
  std::string batch_agg;
  double batch_wall_s = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    auto stream = PcapStream::from_memory(image);
    if (!stream.ok()) {
      std::fprintf(stderr, "from_memory: %s\n", stream.error().c_str());
      return 1;
    }
    PcapStreamSource source(std::move(stream).value(), false);
    const auto t0 = std::chrono::steady_clock::now();
    const TraceAnalysis analysis = run_pipeline(source, AnalyzerOptions{});
    batch_agg = render_report(build_report_model(analysis), ReportFormat::kAgg);
    batch_wall_s = std::min(batch_wall_s, wall_seconds_since(t0));
  }
  std::printf("batch: %.3fs (%.1f MB/s)\n", batch_wall_s,
              static_cast<double>(image.size()) / batch_wall_s / 1e6);

  // The live replay: one epoch per appended chunk, a snapshot render every
  // kSnapshotEvery epochs — the daemon's steady state.
  std::vector<double> epoch_ms;
  std::vector<double> snapshot_ms;
  auto feed = std::make_shared<RingBufferFeed>();
  RingBufferSource source(feed, false);
  LiveOptions lopts;
  LiveEngine engine(source, lopts);
  const auto live_t0 = std::chrono::steady_clock::now();
  std::size_t off = 0;
  std::size_t epochs = 0;
  while (off < image.size()) {
    const std::size_t n = std::min(kChunk, image.size() - off);
    feed->append(std::span(image.data() + off, n));
    off += n;
    const auto t0 = std::chrono::steady_clock::now();
    while (engine.run_epoch() > 0) {
    }
    epoch_ms.push_back(wall_seconds_since(t0) * 1e3);
    if (++epochs % kSnapshotEvery == 0) {
      const auto s0 = std::chrono::steady_clock::now();
      const std::string snap = engine.render_snapshot(ReportFormat::kAgg);
      snapshot_ms.push_back(wall_seconds_since(s0) * 1e3);
      if (snap.empty()) {
        std::fprintf(stderr, "empty snapshot at epoch %zu\n", epochs);
        return 1;
      }
    }
  }
  feed->close();
  engine.drain();
  const double live_wall_s = wall_seconds_since(live_t0);

  const auto f0 = std::chrono::steady_clock::now();
  const std::string live_agg = engine.render_snapshot(ReportFormat::kAgg);
  snapshot_ms.push_back(wall_seconds_since(f0) * 1e3);

  const bool identical = live_agg == batch_agg;
  std::printf("live: %.3fs over %zu epochs (%.1f MB/s), identical=%s\n",
              live_wall_s, epochs,
              static_cast<double>(image.size()) / live_wall_s / 1e6,
              identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr,
                 "live .tdagg differs from batch — refusing to report\n");
    return 1;
  }

  const LatencyStats epoch = summarize(std::move(epoch_ms));
  const LatencyStats snap = summarize(std::move(snapshot_ms));
  const PipelineStats pstats = engine.pipeline_stats();
  std::printf("epoch latency: mean %.2f ms, p99 %.2f ms, max %.2f ms\n",
              epoch.mean_ms, epoch.p99_ms, epoch.max_ms);
  std::printf("snapshot latency: mean %.2f ms, p99 %.2f ms, max %.2f ms\n",
              snap.mean_ms, snap.p99_ms, snap.max_ms);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"cpu_cores\": %u,\n"
      "  \"sessions\": %zu,\n  \"prefixes_per_session\": %zu,\n"
      "  \"capture_bytes\": %zu,\n  \"records\": %llu,\n"
      "  \"chunk_bytes\": %zu,\n  \"epochs\": %zu,\n"
      "  \"batch_wall_s\": %.6f,\n  \"live_wall_s\": %.6f,\n"
      "  \"live_identical_to_batch\": %s,\n"
      "  \"epoch_ms\": {\"mean\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n"
      "  \"snapshot_ms\": {\"mean\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n"
      "  \"ingest_wall_s\": %.6f,\n  \"analyze_wall_s\": %.6f\n}\n",
      cores, kSessions, kPrefixes, image.size(),
      static_cast<unsigned long long>(pstats.records), kChunk, epochs,
      batch_wall_s, live_wall_s, identical ? "true" : "false", epoch.mean_ms,
      epoch.p99_ms, epoch.max_ms, snap.mean_ms, snap.p99_ms, snap.max_ms,
      static_cast<double>(pstats.ingest_wall) / 1e6,
      static_cast<double>(pstats.analyze_wall) / 1e6);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
