// Checkpoint cost in the `tdat watch` hot loop: how much does writing a
// durable .tdckpt every snapshot interval add on top of the epoch itself?
// Replays a multi-session capture through LiveEngine over a FollowSource
// (the daemon's real source type — file-backed, so retained packets have
// capture offsets to serialize) and measures, per checkpoint: engine state
// extraction (checkpoint_state), encoding, and the atomic durable write
// (temp + fsync + rename). Emits BENCH_checkpoint.json (path overridable
// via argv[1]).
//
// The numbers are only reported after the crash-safety invariant is
// checked: a fresh engine restored from the LAST checkpoint and drained
// must render byte-identically to the uninterrupted run — latency of a
// checkpoint that cannot restore is worthless.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "agg/sink.hpp"
#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "core/checkpoint.hpp"
#include "core/live.hpp"
#include "core/live_source.hpp"
#include "core/report.hpp"
#include "pcap/pcap_file.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

constexpr std::size_t kSessions = 32;
constexpr std::size_t kPrefixes = 5'000;
constexpr std::size_t kEpochBatch = 256;      // records per epoch
constexpr std::size_t kCheckpointEvery = 2;   // epochs between checkpoints

std::vector<std::uint8_t> make_image() {
  SimWorld world(4242);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    SessionSpec spec;
    if (i % 4 == 1) spec.up_fwd.random_loss = 0.005;
    if (i % 4 == 2) spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    Rng rng(9300 + 17 * i);
    TableGenConfig tg;
    tg.prefix_count = kPrefixes;
    ids.push_back(
        world.add_session(spec, serialize_updates(generate_table(tg, rng))));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.start_session(ids[i], static_cast<Micros>(i) * 20 * kMicrosPerMilli);
  }
  world.run_until(900 * kMicrosPerSec);
  return serialize_pcap(world.take_trace());
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct LatencyStats {
  double mean_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

LatencyStats summarize(std::vector<double> samples_ms) {
  LatencyStats s;
  if (samples_ms.empty()) return s;
  double sum = 0;
  for (const double v : samples_ms) sum += v;
  s.mean_ms = sum / static_cast<double>(samples_ms.size());
  std::sort(samples_ms.begin(), samples_ms.end());
  s.p99_ms = samples_ms[samples_ms.size() * 99 / 100];
  s.max_ms = samples_ms.back();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_checkpoint.json";
  std::printf("cpu cores: %u\n", std::thread::hardware_concurrency());
  agg::register_aggregate_sink();

  std::printf("building %zu-session trace (%zu prefixes each)...\n", kSessions,
              kPrefixes);
  const std::vector<std::uint8_t> image = make_image();
  std::printf("capture: %.1f MB\n", static_cast<double>(image.size()) / 1e6);

  const std::string cap_path = out_path + ".capture.pcap";
  const std::string ckpt_path = out_path + ".state.tdckpt";
  {
    std::FILE* f = std::fopen(cap_path.c_str(), "wb");
    if (!f || std::fwrite(image.data(), 1, image.size(), f) != image.size()) {
      std::fprintf(stderr, "cannot write %s\n", cap_path.c_str());
      return 1;
    }
    std::fclose(f);
  }

  std::vector<double> state_ms;
  std::vector<double> encode_ms;
  std::vector<double> write_ms;
  std::size_t ckpt_bytes = 0;
  std::size_t checkpoints = 0;
  LiveOptions lopts;
  lopts.epoch_batch_records = kEpochBatch;
  FollowSource source(cap_path, false);
  LiveEngine engine(source, lopts);
  LiveCheckpoint last;
  const auto live_t0 = std::chrono::steady_clock::now();
  std::size_t epochs = 0;
  while (engine.run_epoch() > 0) {
    if (++epochs % kCheckpointEvery != 0 || !source.checkpointable()) continue;
    LiveCheckpoint ckpt;
    const auto s0 = std::chrono::steady_clock::now();
    if (auto r = engine.checkpoint_state(ckpt); !r.ok()) {
      std::fprintf(stderr, "checkpoint_state: %s\n", r.error().c_str());
      return 1;
    }
    auto ident = compute_capture_identity(cap_path);
    if (!ident.ok()) {
      std::fprintf(stderr, "capture identity: %s\n", ident.error().c_str());
      return 1;
    }
    ckpt.capture = ident.value();
    const PcapStream::Resume resume = source.resume_state();
    ckpt.resume_offset = resume.offset;
    ckpt.records_seen = resume.records;
    ckpt.stream_last_ts = resume.last_ts;
    ckpt.diag = resume.diag;
    state_ms.push_back(wall_seconds_since(s0) * 1e3);

    const auto e0 = std::chrono::steady_clock::now();
    const std::vector<std::uint8_t> encoded = encode_checkpoint(ckpt);
    encode_ms.push_back(wall_seconds_since(e0) * 1e3);
    ckpt_bytes = std::max(ckpt_bytes, encoded.size());

    const auto w0 = std::chrono::steady_clock::now();
    if (auto r = write_checkpoint_file(ckpt_path, ckpt); !r.ok()) {
      std::fprintf(stderr, "write_checkpoint_file: %s\n", r.error().c_str());
      return 1;
    }
    write_ms.push_back(wall_seconds_since(w0) * 1e3);
    last = ckpt;
    ++checkpoints;
  }
  engine.drain();
  const double live_wall_s = wall_seconds_since(live_t0);
  const std::string full_agg = engine.render_snapshot(ReportFormat::kAgg);

  // Crash-safety invariant: restore from the last checkpoint and drain.
  if (checkpoints == 0) {
    std::fprintf(stderr, "capture too small: no checkpoint was taken\n");
    return 1;
  }
  FollowSource resumed(cap_path, false, IngestPolicy{},
                       PcapStream::Resume{last.resume_offset,
                                          last.records_seen,
                                          last.stream_last_ts, last.diag});
  LiveEngine fresh(resumed, lopts);
  if (auto r = fresh.restore_state(last, cap_path); !r.ok()) {
    std::fprintf(stderr, "restore_state: %s\n", r.error().c_str());
    return 1;
  }
  while (fresh.run_epoch() > 0) {
  }
  fresh.drain();
  const bool identical = fresh.render_snapshot(ReportFormat::kAgg) == full_agg;
  std::printf("restore from last checkpoint identical=%s\n",
              identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr,
                 "restored .tdagg differs from the uninterrupted run — "
                 "refusing to report\n");
    return 1;
  }

  const LatencyStats state = summarize(std::move(state_ms));
  const LatencyStats encode = summarize(std::move(encode_ms));
  const LatencyStats write = summarize(std::move(write_ms));
  std::printf("%zu checkpoints over %zu epochs (%.3fs live), %.1f KB max\n",
              checkpoints, epochs, live_wall_s,
              static_cast<double>(ckpt_bytes) / 1e3);
  std::printf("state extraction: mean %.3f ms, p99 %.3f ms, max %.3f ms\n",
              state.mean_ms, state.p99_ms, state.max_ms);
  std::printf("encode: mean %.3f ms, p99 %.3f ms, max %.3f ms\n",
              encode.mean_ms, encode.p99_ms, encode.max_ms);
  std::printf("durable write: mean %.3f ms, p99 %.3f ms, max %.3f ms\n",
              write.mean_ms, write.p99_ms, write.max_ms);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"sessions\": %zu,\n  \"prefixes_per_session\": %zu,\n"
      "  \"capture_bytes\": %zu,\n  \"epochs\": %zu,\n"
      "  \"checkpoints\": %zu,\n  \"checkpoint_bytes_max\": %zu,\n"
      "  \"restore_identical\": %s,\n"
      "  \"state_ms\": {\"mean\": %.4f, \"p99\": %.4f, \"max\": %.4f},\n"
      "  \"encode_ms\": {\"mean\": %.4f, \"p99\": %.4f, \"max\": %.4f},\n"
      "  \"write_ms\": {\"mean\": %.4f, \"p99\": %.4f, \"max\": %.4f}\n}\n",
      kSessions, kPrefixes, image.size(), epochs, checkpoints, ckpt_bytes,
      identical ? "true" : "false", state.mean_ms, state.p99_ms, state.max_ms,
      encode.mean_ms, encode.p99_ms, encode.max_ms, write.mean_ms, write.p99_ms,
      write.max_ms);
  std::fclose(f);
  std::remove(cap_path.c_str());
  std::remove(ckpt_path.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
