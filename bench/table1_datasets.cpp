// Table I: summary of BGP/TCP datasets and identified table transfers.
// Paper (real traces): ISP_A-1 1023M pkts/218GB, 24 rtrs, 10396 transfers;
// ISP_A-2 909-1296M/81-219GB, 27 rtrs, 180-436; RV 176M/47GB, 59 rtrs, 94.
// Ours are synthetic fleets scaled down ~50x in table size and transfer
// count; the relationships (ISP_A-1 has by far the most transfers because
// of the vendor reset bug, RouteViews the fewest) must match.
#include "bench_util.hpp"

int main() {
  using namespace tdat;
  bench::print_header("Table I — datasets and identified table transfers",
                      "Table I");

  TextTable table({"Trace", "Type", "Collector", "Pkts(K)", "MB", "Rtrs",
                   "Transfers", "AnalyzedOK"});
  for (int i = 0; i < 3; ++i) {
    const FleetResult& fleet = bench::dataset(i);
    std::size_t analyzed = 0;
    for (const TransferRecord& t : fleet.transfers) {
      if (!t.analysis.transfer.empty()) ++analyzed;
    }
    table.add_row({fleet.config.name,
                   fleet.config.ebgp ? "eBGP" : "iBGP",
                   fleet.config.collector == CollectorKind::kVendor ? "Vendor"
                                                                    : "Quagga",
                   fmt_double(static_cast<double>(fleet.total_packets) / 1e3, 1),
                   fmt_double(static_cast<double>(fleet.total_bytes) / 1e6, 1),
                   std::to_string(fleet.config.routers),
                   std::to_string(fleet.transfers.size()),
                   std::to_string(analyzed)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Scale note: tables are ~%d prefixes vs ~300k real; counts are\n"
              "scaled accordingly. See EXPERIMENTS.md.\n", 2500);
  return 0;
}
