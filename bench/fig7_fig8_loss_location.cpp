// Figures 7 & 8: distinguishing downstream (receiver-local) losses from
// upstream losses by what the co-located sniffer sees. Downstream: the
// sniffer captured the original packet AND its retransmission (Fig. 7).
// Upstream: the sniffer sees a sequence hole and only the retransmission
// (Fig. 8). We run one scenario of each kind and show the classification.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"
#include "core/series_names.hpp"

namespace {

void run_case(const char* label, tdat::SessionSpec spec, std::uint64_t seed) {
  using namespace tdat;
  SimWorld world(seed);
  Rng rng(seed ^ 0x77);
  TableGenConfig tg;
  tg.prefix_count = 6000;
  const auto session = world.add_session(spec, serialize_updates(generate_table(tg, rng)));
  world.start_session(session, 0);
  world.run_until(300 * kMicrosPerSec);

  const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
  const auto& a = ta.results.at(0);
  const auto& up = a.series().get(series::kUpstreamLoss);
  const auto& down = a.series().get(series::kDownstreamLoss);
  std::printf("%s\n", label);
  std::printf("  upstream-loss retx:   %4zu packets, recovery %7.2f s\n",
              up.count(), to_seconds(up.size()));
  std::printf("  downstream-loss retx: %4zu packets, recovery %7.2f s\n",
              down.count(), to_seconds(down.size()));
  std::printf("  interpreted (sniffer at receiver): NetworkLoss=%zu,"
              " RecvLocalLoss=%zu\n\n",
              a.series().get(series::kNetworkLoss).count(),
              a.series().get(series::kRecvLocalLoss).count());
}

}  // namespace

int main() {
  using namespace tdat;
  bench::print_header(
      "Figures 7/8 — downstream (receiver-local) vs upstream losses",
      "Figs. 7-8");

  SessionSpec downstream;  // drops at the collector's interface queue
  downstream.down_fwd.queue_packets = 10;
  downstream.down_fwd.rate_bytes_per_sec = 2'000'000;
  downstream.sender_tcp.initial_cwnd_segments = 36;
  run_case("Fig. 7 scenario: tail drops at the receiver's interface",
           downstream, 707);

  SessionSpec upstream;  // drops on the wide-area path before the sniffer
  upstream.up_fwd.random_loss = 0.02;
  run_case("Fig. 8 scenario: random loss on the upstream path", upstream, 708);
  return 0;
}
