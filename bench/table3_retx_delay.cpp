// Table III: per-update arrival delay during a retransmission episode.
// Paper: a router sent a batch of updates at one instant; loss recovery
// spread their arrivals over 1..13 seconds — delay that would be blamed on
// BGP dynamics without the packet trace. We reproduce the mechanism: a
// burst into a tight receiver-side queue, then list updates with their
// arrival delay relative to the batch send time.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"

int main() {
  using namespace tdat;
  bench::print_header(
      "Table III — retransmission delay of BGP updates (seconds)", "Table III");

  SimWorld world(303);
  SessionSpec spec;
  spec.down_fwd.queue_packets = 8;
  spec.down_fwd.rate_bytes_per_sec = 1'000'000;
  spec.sender_tcp.initial_cwnd_segments = 40;
  spec.sender_tcp.min_rto = kMicrosPerSec;
  spec.sender_tcp.rto_backoff = 2.0;
  Rng rng(304);
  TableGenConfig tg;
  tg.prefix_count = 4000;
  const auto updates = generate_table(tg, rng);
  const auto session = world.add_session(spec, serialize_updates(updates));
  world.start_session(session, 0);
  world.run_until(300 * kMicrosPerSec);

  // The batch leaves the sender's BGP process at connection establishment;
  // measure when each update reached the receiving BGP process.
  const auto& archive = world.receiver(session).archive();
  Micros batch_sent = -1;
  for (const auto& tm : archive) {
    if (tm.msg.as_update() != nullptr) {
      batch_sent = tm.ts;
      break;
    }
  }
  if (batch_sent < 0) {
    std::printf("no updates received\n");
    return 1;
  }

  TextTable t({"ArrivalOffset(s)", "Delay(s)", "Prefix", "Path"});
  Micros prev_delay = -1;
  std::size_t rows = 0;
  for (const auto& tm : archive) {
    const BgpUpdate* upd = tm.msg.as_update();
    if (upd == nullptr || upd->nlri.empty()) continue;
    const Micros delay = tm.ts - batch_sent;
    // Show one representative row per distinct arrival second (the paper's
    // table lists a few rows per delay step).
    if (delay / kMicrosPerSec == prev_delay / kMicrosPerSec && prev_delay >= 0) {
      continue;
    }
    prev_delay = delay;
    t.add_row({fmt_double(to_seconds(tm.ts), 2), fmt_double(to_seconds(delay), 2),
               upd->nlri.front().to_string(), upd->attrs.as_path_string()});
    if (++rows >= 12) break;
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nUpdates written to TCP at the same instant arrived spread over\n"
              "%.1f s because of loss recovery at the receiver's interface.\n",
              to_seconds(prev_delay));
  return 0;
}
