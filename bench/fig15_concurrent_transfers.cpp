// Figure 15: effect of concurrent table transfers on the receiving side.
// Paper: below ~10 concurrent transfers the TCP receiver window is the
// (mild) bound; as concurrency grows the receiving BGP process becomes the
// bottleneck (small/zero windows dominate). We run 1..24 concurrent
// sessions against one collector with shared read capacity and plot the
// receiver-side factor split.
#include "bench_util.hpp"
#include "bgp/table_gen.hpp"

int main() {
  using namespace tdat;
  bench::print_header(
      "Figure 15 — concurrent transfers vs receiver-side delay factors",
      "Fig. 15");

  std::printf("%-12s %-18s %-18s %-14s\n", "concurrent", "BGP-recv ratio",
              "TCP-window ratio", "avg dur (s)");
  for (std::size_t n : {1, 2, 4, 8, 12, 16, 24}) {
    SimWorld world(1500 + n);
    world.use_collector_host(2'000'000);  // shared read capacity
    world.use_shared_downstream(LinkConfig{.propagation_delay = 50},
                                LinkConfig{.propagation_delay = 50});
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < n; ++i) {
      SessionSpec spec;
      spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
      Rng rng(2000 + 37 * n + i);
      TableGenConfig tg;
      tg.prefix_count = 2500;
      ids.push_back(
          world.add_session(spec, serialize_updates(generate_table(tg, rng))));
    }
    for (const auto id : ids) world.start_session(id, 0);
    world.run_until(900 * kMicrosPerSec);

    const auto ta = analyze_trace(world.take_trace(), AnalyzerOptions{});
    double bgp_recv = 0, tcp_win = 0, dur = 0;
    std::size_t counted = 0;
    for (const auto& a : ta.results) {
      if (a.transfer.empty()) continue;
      bgp_recv += a.report.ratio(Factor::kBgpReceiverApp);
      tcp_win += a.report.ratio(Factor::kTcpAdvertisedWindow);
      dur += to_seconds(a.transfer_duration());
      ++counted;
    }
    if (counted == 0) continue;
    const auto c = static_cast<double>(counted);
    std::printf("%-12zu %-18.3f %-18.3f %-14.2f\n", n, bgp_recv / c, tcp_win / c,
                dur / c);
  }
  std::printf("\nExpected shape: TCP-window bound at low concurrency; the BGP\n"
              "receiver process takes over as concurrency grows.\n");
  return 0;
}
