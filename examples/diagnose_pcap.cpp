// diagnose_pcap: the operator-facing tool the paper motivates — point it at
// a (bidirectional) packet capture of BGP sessions and it answers: "are my
// table transfers slow, and whose fault is it?"
//
//   ./build/examples/diagnose_pcap trace.pcap        analyze a capture
//   ./build/examples/diagnose_pcap --demo [N]        self-generate a demo
//                                                    capture with N sessions
//                                                    (default 3) and analyze it
//
// For every connection it reports the connection profile, the table-transfer
// window, the 8-factor delay breakdown, the (Rs, Rr, Rn) group vector, and
// runs all four problem detectors, including the cross-connection peer-group
// check over every connection pair.
#include <cstdio>
#include <cstring>
#include <string>

#include "bgp/table_gen.hpp"
#include "core/detectors.hpp"
#include "core/locate.hpp"
#include "sim/world.hpp"

namespace {

using namespace tdat;

PcapFile make_demo(std::size_t sessions) {
  SimWorld world(99);
  world.use_collector_host(1'500'000);
  for (std::size_t i = 0; i < sessions; ++i) {
    SessionSpec spec;
    if (i % 3 == 0) {  // a timer-paced vendor router
      spec.bgp.timer_driven = true;
      spec.bgp.timer_interval = 200 * kMicrosPerMilli;
      spec.bgp.msgs_per_tick = 50;
    } else if (i % 3 == 1) {  // a loss-prone path
      spec.up_fwd.random_loss = 0.02;
    } else {  // a tight receive window
      spec.receiver_tcp.recv_buf_capacity = 16 * 1024;
    }
    Rng rng(100 + i);
    TableGenConfig tg;
    tg.prefix_count = 4'000;
    const auto s =
        world.add_session(spec, serialize_updates(generate_table(tg, rng)));
    world.start_session(s, static_cast<Micros>(i) * 100 * kMicrosPerMilli);
  }
  world.run_until(300 * kMicrosPerSec);
  return world.take_trace();
}

void report(const TraceAnalysis& analysis) {
  for (const ConnectionAnalysis& conn : analysis.results) {
    const auto& raw = analysis.connections[conn.conn_index];
    std::printf("--------------------------------------------------------\n");
    std::printf("connection %s  (%zu packets)\n", raw.key.to_string().c_str(),
                raw.packets.size());
    if (conn.transfer.empty()) {
      std::printf("  no BGP table transfer found on this connection\n");
      continue;
    }
    std::printf("  profile: RTT %.1f ms, MSS %u, max window %u B\n",
                to_millis(conn.profile.rtt()), conn.profile.mss(),
                conn.profile.max_advertised_window());
    const auto where =
        infer_sniffer_location(analysis.connections[conn.conn_index], conn.profile);
    if (where.confident) {
      const char* name = where.location == SnifferLocation::kNearReceiver
                             ? "near the receiver"
                             : (where.location == SnifferLocation::kNearSender
                                    ? "near the sender"
                                    : "mid-path");
      std::printf("  sniffer position (inferred): %s (d1 %.2f ms, d2 %.2f ms)\n",
                  name, to_millis(where.d1), to_millis(where.d2));
      if (where.location == SnifferLocation::kNearSender) {
        std::printf("    note: analysis assumed a receiver-side capture;"
                    " rerun with location = kNearSender\n");
      }
    }
    std::printf("  transfer: %.2f s, %zu updates / %zu prefixes%s\n",
                to_seconds(conn.transfer_duration()), conn.mct.update_count,
                conn.mct.prefix_count,
                conn.mct.ended_by_repeat ? " (ended by routing dynamics)" : "");
    std::printf("  group delay vector (Rs, Rr, Rn) = (%.2f, %.2f, %.2f)\n",
                conn.report.ratio(FactorGroup::kSender),
                conn.report.ratio(FactorGroup::kReceiver),
                conn.report.ratio(FactorGroup::kNetwork));
    for (std::size_t g = 0; g < kGroupCount; ++g) {
      const auto group = static_cast<FactorGroup>(g);
      if (conn.report.major(group)) {
        std::printf("  MAJOR factor group: %s (dominant: %s)\n",
                    to_string(group), to_string(conn.report.dominant(group)));
      }
    }

    const auto timer = detect_timer_gaps(conn.series(), conn.transfer);
    if (timer.detected) {
      std::printf("  ! BGP pacing timer ~%.0f ms, %zu gaps, %.1f s of delay\n",
                  to_millis(timer.timer), timer.gap_count,
                  to_seconds(timer.introduced_delay));
    }
    const auto losses = detect_consecutive_losses(conn.series(), conn.transfer);
    if (losses.detected) {
      std::printf("  ! consecutive losses: %zu episode(s), worst run %zu pkts,"
                  " %.1f s of delay\n",
                  losses.episodes, losses.max_consecutive,
                  to_seconds(losses.introduced_delay));
    }
    const auto bug = detect_zero_ack_bug(conn.series(), conn.transfer);
    if (bug.detected) {
      std::printf("  ! zero-window probe bug suspected: %zu loss(es) during"
                  " closed-window periods\n",
                  bug.occurrences);
    }
    const auto voids =
        detect_capture_voids(analysis.connections[conn.conn_index], conn.profile);
    if (voids.detected) {
      std::printf("  ! capture drops: %llu bytes acked but never captured in"
                  " %zu void period(s) — exclude them from analysis\n",
                  static_cast<unsigned long long>(voids.missing_bytes),
                  voids.voids.size());
    }
    const auto pause = detect_peer_group_pause(conn);
    if (pause.detected) {
      std::printf("  ! long keepalive-only pause(s): %.1f s total — possible"
                  " peer-group blocking\n",
                  to_seconds(pause.blocked_time));
    }
  }

  // Cross-connection peer-group confirmation over all pairs.
  for (const ConnectionAnalysis& a : analysis.results) {
    for (const ConnectionAnalysis& b : analysis.results) {
      if (&a == &b) continue;
      const auto blocked = detect_peer_group_blocking(a, b);
      if (blocked.detected) {
        std::printf("! %s paused while %s was failing: peer-group blocking,"
                    " %.1f s\n",
                    analysis.connections[a.conn_index].key.to_string().c_str(),
                    analysis.connections[b.conn_index].key.to_string().c_str(),
                    to_seconds(blocked.blocked_time));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  PcapFile trace;
  if (argc > 1 && std::strcmp(argv[1], "--demo") != 0) {
    const auto loaded = read_pcap_file(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.error().c_str());
      return 1;
    }
    trace = loaded.value();
  } else {
    const std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;
    std::printf("no capture given: generating a demo trace with %zu sessions\n", n);
    trace = make_demo(n);
  }

  const TraceAnalysis analysis = analyze_trace(trace, AnalyzerOptions{});
  std::printf("%zu packets, %zu TCP connection(s)\n", trace.records.size(),
              analysis.results.size());
  report(analysis);
  return 0;
}
