// peer_group_audit: reproduce the Fig. 9 investigation as a runnable story.
// Simulates a two-member peer group whose vendor collector fails mid
// transfer, then walks through exactly the checks §IV-B describes:
//
//   1. find suspicious sender-idle gaps that match the keepalive pattern,
//   2. confirm only keepalives flow during the pause (the Outstanding /
//      KeepAliveOnly series),
//   3. intersect the victim's pause with the sibling connection's loss
//      series: Quagga.SendAppLimited ∩ Vendor.Loss.
#include <cstdio>

#include "bgp/table_gen.hpp"
#include "core/detectors.hpp"
#include "core/series_names.hpp"
#include "sim/peer_group.hpp"
#include "sim/world.hpp"

int main() {
  using namespace tdat;
  std::printf("simulating a 2-member peer group; the vendor collector dies"
              " 1 s into the transfer...\n");

  SimWorld world(42);
  Rng rng(43);
  TableGenConfig tg;
  tg.prefix_count = 40'000;
  PeerGroup group(serialize_updates(generate_table(tg, rng)), 40);

  SessionSpec quagga;  // the healthy member
  SessionSpec vendor;  // fails at t1
  vendor.receiver_ip = 0x0a09090a;
  for (SessionSpec* s : {&quagga, &vendor}) {
    s->bgp.hold_time = 180 * kMicrosPerSec;
    s->bgp.keepalive_interval = 30 * kMicrosPerSec;
    s->collector.keepalive_interval = 30 * kMicrosPerSec;
  }
  vendor.sender_tcp.send_buf_capacity = 8 * 1024;
  const auto q = world.add_session(quagga, &group);
  const auto v = world.add_session(vendor, &group);
  world.start_session(q, 0);
  world.start_session(v, 0);
  world.run_until(kMicrosPerSec);
  world.receiver(v).die();
  world.run_until(600 * kMicrosPerSec);

  const TraceAnalysis analysis = analyze_trace(world.take_trace(), AnalyzerOptions{});
  if (analysis.results.size() != 2) {
    std::fprintf(stderr, "expected 2 connections\n");
    return 1;
  }
  const auto& first = analysis.results[0];
  const auto& second = analysis.results[1];
  const auto& victim = first.bundle.flow.stream_length > second.bundle.flow.stream_length
                           ? first
                           : second;
  const auto& failed = &victim == &first ? second : first;

  // Step 1+2: the single-connection screen.
  const auto pause = detect_peer_group_pause(victim);
  std::printf("\nstep 1-2: suspicious keepalive-only pauses on the healthy"
              " session: %zu (total %.1f s)\n",
              pause.episodes.size(), to_seconds(pause.blocked_time));
  for (const TimeRange& r : pause.episodes) {
    const auto kas = victim.series().get(series::kKeepAliveOnly).query(r);
    std::size_t ka_packets = 0;
    for (const Event& e : kas) ka_packets += e.packets;
    std::printf("  pause [%.1f s .. %.1f s]: %zu keepalives, nothing else\n",
                to_seconds(r.begin), to_seconds(r.end), ka_packets);
  }

  // Step 3: cross-connection confirmation.
  const auto blocked = detect_peer_group_blocking(victim, failed);
  std::printf("\nstep 3: victim.SendAppLimited ∩ sibling.LossRecovery\n");
  if (blocked.detected) {
    std::printf("  CONFIRMED peer-group blocking: %.1f s — the group queue was\n"
                "  pinned by the failed member until its hold timer fired.\n",
                to_seconds(blocked.blocked_time));
  } else {
    std::printf("  no overlap: the pauses were not caused by the sibling.\n");
  }

  std::printf("\nsibling (failed) session: %zu retransmitted packets while"
              " unreachable\n",
              failed.series().get(series::kRetransmission).count());
  return blocked.detected ? 0 : 1;
}
