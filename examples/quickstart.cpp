// Quickstart: the whole tdat pipeline in one file.
//
//  1. simulate a BGP table transfer with a known bottleneck (a slow
//     collector) and capture it at a sniffer next to the receiver,
//  2. write the capture as a standard pcap file,
//  3. run the T-DAT analyzer on that file,
//  4. print the delay-factor report and a square-wave view of the series.
//
// Build & run:  ./build/examples/quickstart [output.pcap]
#include <cstdio>
#include <string>

#include "bgp/table_gen.hpp"
#include "core/analyzer.hpp"
#include "core/series_names.hpp"
#include "sim/world.hpp"
#include "timerange/render.hpp"

int main(int argc, char** argv) {
  using namespace tdat;
  const std::string path = argc > 1 ? argv[1] : "quickstart.pcap";

  // --- 1. simulate --------------------------------------------------------
  SimWorld world(/*seed=*/1);
  SessionSpec spec;
  spec.receiver_tcp.recv_buf_capacity = 8 * 1024;           // small socket buffer
  spec.collector.read_interval = 200 * kMicrosPerMilli;      // sluggish reader
  spec.collector.read_chunk = 8 * 1024;

  Rng rng(2);
  TableGenConfig table;
  table.prefix_count = 5'000;  // a scaled-down "full table"
  const auto session =
      world.add_session(spec, serialize_updates(generate_table(table, rng)));
  world.start_session(session, 0);
  world.run_until(120 * kMicrosPerSec);
  std::printf("simulated transfer: sender finished = %s\n",
              world.sender(session).finished_sending() ? "yes" : "no");

  // --- 2. write the capture ----------------------------------------------
  const PcapFile trace = world.take_trace();
  if (!write_pcap_file(path, trace)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu packets to %s\n", trace.records.size(), path.c_str());

  // --- 3. analyze ----------------------------------------------------------
  const auto loaded = read_pcap_file(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.error().c_str());
    return 1;
  }
  const TraceAnalysis analysis = analyze_trace(loaded.value(), AnalyzerOptions{});
  std::printf("found %zu TCP connection(s)\n\n", analysis.results.size());

  // --- 4. report -----------------------------------------------------------
  for (const ConnectionAnalysis& conn : analysis.results) {
    std::printf("connection %s\n", analysis.connections[conn.conn_index].key
                                       .to_string().c_str());
    std::printf("  RTT %.1f ms, MSS %u, max advertised window %u B\n",
                to_millis(conn.profile.rtt()), conn.profile.mss(),
                conn.profile.max_advertised_window());
    std::printf("  table transfer: %.2f s, %zu updates, %zu prefixes\n",
                to_seconds(conn.transfer_duration()), conn.mct.update_count,
                conn.mct.prefix_count);
    std::printf("  delay ratios:\n");
    for (std::size_t f = 0; f < kFactorCount; ++f) {
      if (conn.report.factor_ratio[f] < 0.01) continue;
      std::printf("    %-26s %5.1f%%\n", to_string(static_cast<Factor>(f)),
                  conn.report.factor_ratio[f] * 100.0);
    }
    for (std::size_t g = 0; g < kGroupCount; ++g) {
      const auto group = static_cast<FactorGroup>(g);
      if (!conn.report.major(group)) continue;
      std::printf("  MAJOR: %s limited (%.0f%% of the transfer), mostly: %s\n",
                  to_string(group), conn.report.ratio(group) * 100.0,
                  to_string(conn.report.dominant(group)));
    }

    std::printf("\n%s\n",
                render_series({&conn.series().get(series::kTransmission),
                               &conn.series().get(series::kOutstanding),
                               &conn.series().get(series::kSmallAdvBndOut),
                               &conn.series().get(series::kSendAppLimited)},
                              conn.transfer)
                    .c_str());
  }
  return 0;
}
