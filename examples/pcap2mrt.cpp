// pcap2mrt: the paper's pcap2bgp side tool (Table VI) as a command-line
// utility. Reconstructs the TCP byte stream of each BGP session in a raw
// capture — healing out-of-order delivery and retransmissions — extracts the
// BGP messages, and stores them as an MRT (BGP4MP) archive, exactly what a
// Quagga collector would have written.
//
//   ./build/examples/pcap2mrt input.pcap output.mrt
//   ./build/examples/pcap2mrt --demo output.mrt     (self-generated capture)
#include <cstdio>
#include <cstring>

#include "bgp/table_gen.hpp"
#include "core/pcap2bgp.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace tdat;
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <input.pcap|--demo> <output.mrt>\n", argv[0]);
    return 2;
  }

  PcapFile trace;
  if (std::strcmp(argv[1], "--demo") == 0) {
    SimWorld world(7);
    SessionSpec spec;
    spec.up_fwd.random_loss = 0.01;  // make the reassembler work for it
    Rng rng(8);
    TableGenConfig tg;
    tg.prefix_count = 3'000;
    const auto s =
        world.add_session(spec, serialize_updates(generate_table(tg, rng)));
    world.start_session(s, 0);
    world.run_until(300 * kMicrosPerSec);
    trace = world.take_trace();
    std::printf("generated demo capture: %zu packets\n", trace.records.size());
  } else {
    auto loaded = read_pcap_file(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.error().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
  }

  std::vector<MrtRecord> all_records;
  const auto connections = split_connections(decode_pcap(trace));
  for (const Connection& conn : connections) {
    const ConnectionProfile profile = compute_profile(conn);
    const Pcap2BgpResult result = extract_bgp_messages(conn, profile.data_dir);
    if (result.messages.empty()) continue;

    std::size_t updates = 0, prefixes = 0, keepalives = 0;
    for (const TimedBgpMessage& tm : result.messages) {
      if (const BgpUpdate* upd = tm.msg.as_update()) {
        ++updates;
        prefixes += upd->nlri.size();
      } else if (tm.msg.type() == BgpType::kKeepAlive) {
        ++keepalives;
      }
    }
    std::printf("%s: %zu msgs (%zu updates, %zu prefixes, %zu keepalives)",
                conn.key.to_string().c_str(), result.messages.size(), updates,
                prefixes, keepalives);
    if (result.skipped_bytes > 0 || result.parse_errors > 0) {
      std::printf("  [skipped %llu bytes, %llu parse errors]",
                  static_cast<unsigned long long>(result.skipped_bytes),
                  static_cast<unsigned long long>(result.parse_errors));
    }
    std::printf("\n");

    const auto records = to_mrt_records(conn, profile.data_dir, result.messages);
    all_records.insert(all_records.end(), records.begin(), records.end());
  }

  if (!write_mrt_file(argv[2], all_records)) {
    std::fprintf(stderr, "cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %zu MRT records to %s\n", all_records.size(), argv[2]);
  return 0;
}
