# Empty compiler generated dependencies file for tdat_util.
# This may be replaced when dependencies are built.
