file(REMOVE_RECURSE
  "libtdat_util.a"
)
