file(REMOVE_RECURSE
  "CMakeFiles/tdat_util.dir/knee.cpp.o"
  "CMakeFiles/tdat_util.dir/knee.cpp.o.d"
  "CMakeFiles/tdat_util.dir/stats.cpp.o"
  "CMakeFiles/tdat_util.dir/stats.cpp.o.d"
  "CMakeFiles/tdat_util.dir/table.cpp.o"
  "CMakeFiles/tdat_util.dir/table.cpp.o.d"
  "libtdat_util.a"
  "libtdat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
