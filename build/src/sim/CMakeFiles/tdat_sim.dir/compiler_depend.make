# Empty compiler generated dependencies file for tdat_sim.
# This may be replaced when dependencies are built.
