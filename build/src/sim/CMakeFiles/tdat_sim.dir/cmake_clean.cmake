file(REMOVE_RECURSE
  "CMakeFiles/tdat_sim.dir/bgp_apps.cpp.o"
  "CMakeFiles/tdat_sim.dir/bgp_apps.cpp.o.d"
  "CMakeFiles/tdat_sim.dir/link.cpp.o"
  "CMakeFiles/tdat_sim.dir/link.cpp.o.d"
  "CMakeFiles/tdat_sim.dir/sim_packet.cpp.o"
  "CMakeFiles/tdat_sim.dir/sim_packet.cpp.o.d"
  "CMakeFiles/tdat_sim.dir/tcp_endpoint.cpp.o"
  "CMakeFiles/tdat_sim.dir/tcp_endpoint.cpp.o.d"
  "CMakeFiles/tdat_sim.dir/world.cpp.o"
  "CMakeFiles/tdat_sim.dir/world.cpp.o.d"
  "libtdat_sim.a"
  "libtdat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
