file(REMOVE_RECURSE
  "libtdat_sim.a"
)
