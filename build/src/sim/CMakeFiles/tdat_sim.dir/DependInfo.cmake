
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bgp_apps.cpp" "src/sim/CMakeFiles/tdat_sim.dir/bgp_apps.cpp.o" "gcc" "src/sim/CMakeFiles/tdat_sim.dir/bgp_apps.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/tdat_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/tdat_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/sim_packet.cpp" "src/sim/CMakeFiles/tdat_sim.dir/sim_packet.cpp.o" "gcc" "src/sim/CMakeFiles/tdat_sim.dir/sim_packet.cpp.o.d"
  "/root/repo/src/sim/tcp_endpoint.cpp" "src/sim/CMakeFiles/tdat_sim.dir/tcp_endpoint.cpp.o" "gcc" "src/sim/CMakeFiles/tdat_sim.dir/tcp_endpoint.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/tdat_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/tdat_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcap/CMakeFiles/tdat_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tdat_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/tdat_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/timerange/CMakeFiles/tdat_timerange.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
