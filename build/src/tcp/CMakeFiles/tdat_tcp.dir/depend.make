# Empty dependencies file for tdat_tcp.
# This may be replaced when dependencies are built.
