file(REMOVE_RECURSE
  "CMakeFiles/tdat_tcp.dir/classify.cpp.o"
  "CMakeFiles/tdat_tcp.dir/classify.cpp.o.d"
  "CMakeFiles/tdat_tcp.dir/connection.cpp.o"
  "CMakeFiles/tdat_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/tdat_tcp.dir/flights.cpp.o"
  "CMakeFiles/tdat_tcp.dir/flights.cpp.o.d"
  "CMakeFiles/tdat_tcp.dir/profile.cpp.o"
  "CMakeFiles/tdat_tcp.dir/profile.cpp.o.d"
  "CMakeFiles/tdat_tcp.dir/reassembler.cpp.o"
  "CMakeFiles/tdat_tcp.dir/reassembler.cpp.o.d"
  "libtdat_tcp.a"
  "libtdat_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
