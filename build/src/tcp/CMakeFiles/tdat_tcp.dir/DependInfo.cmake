
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/classify.cpp" "src/tcp/CMakeFiles/tdat_tcp.dir/classify.cpp.o" "gcc" "src/tcp/CMakeFiles/tdat_tcp.dir/classify.cpp.o.d"
  "/root/repo/src/tcp/connection.cpp" "src/tcp/CMakeFiles/tdat_tcp.dir/connection.cpp.o" "gcc" "src/tcp/CMakeFiles/tdat_tcp.dir/connection.cpp.o.d"
  "/root/repo/src/tcp/flights.cpp" "src/tcp/CMakeFiles/tdat_tcp.dir/flights.cpp.o" "gcc" "src/tcp/CMakeFiles/tdat_tcp.dir/flights.cpp.o.d"
  "/root/repo/src/tcp/profile.cpp" "src/tcp/CMakeFiles/tdat_tcp.dir/profile.cpp.o" "gcc" "src/tcp/CMakeFiles/tdat_tcp.dir/profile.cpp.o.d"
  "/root/repo/src/tcp/reassembler.cpp" "src/tcp/CMakeFiles/tdat_tcp.dir/reassembler.cpp.o" "gcc" "src/tcp/CMakeFiles/tdat_tcp.dir/reassembler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcap/CMakeFiles/tdat_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/timerange/CMakeFiles/tdat_timerange.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
