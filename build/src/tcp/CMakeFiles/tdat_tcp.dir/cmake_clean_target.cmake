file(REMOVE_RECURSE
  "libtdat_tcp.a"
)
