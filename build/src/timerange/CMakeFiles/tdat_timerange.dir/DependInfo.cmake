
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timerange/event_series.cpp" "src/timerange/CMakeFiles/tdat_timerange.dir/event_series.cpp.o" "gcc" "src/timerange/CMakeFiles/tdat_timerange.dir/event_series.cpp.o.d"
  "/root/repo/src/timerange/range_set.cpp" "src/timerange/CMakeFiles/tdat_timerange.dir/range_set.cpp.o" "gcc" "src/timerange/CMakeFiles/tdat_timerange.dir/range_set.cpp.o.d"
  "/root/repo/src/timerange/render.cpp" "src/timerange/CMakeFiles/tdat_timerange.dir/render.cpp.o" "gcc" "src/timerange/CMakeFiles/tdat_timerange.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
