file(REMOVE_RECURSE
  "CMakeFiles/tdat_timerange.dir/event_series.cpp.o"
  "CMakeFiles/tdat_timerange.dir/event_series.cpp.o.d"
  "CMakeFiles/tdat_timerange.dir/range_set.cpp.o"
  "CMakeFiles/tdat_timerange.dir/range_set.cpp.o.d"
  "CMakeFiles/tdat_timerange.dir/render.cpp.o"
  "CMakeFiles/tdat_timerange.dir/render.cpp.o.d"
  "libtdat_timerange.a"
  "libtdat_timerange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_timerange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
