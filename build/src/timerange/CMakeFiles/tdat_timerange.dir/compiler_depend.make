# Empty compiler generated dependencies file for tdat_timerange.
# This may be replaced when dependencies are built.
