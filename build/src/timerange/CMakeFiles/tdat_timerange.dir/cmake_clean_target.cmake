file(REMOVE_RECURSE
  "libtdat_timerange.a"
)
