# Empty dependencies file for tdat_core.
# This may be replaced when dependencies are built.
