file(REMOVE_RECURSE
  "CMakeFiles/tdat_core.dir/ack_shift.cpp.o"
  "CMakeFiles/tdat_core.dir/ack_shift.cpp.o.d"
  "CMakeFiles/tdat_core.dir/analyzer.cpp.o"
  "CMakeFiles/tdat_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/tdat_core.dir/archive.cpp.o"
  "CMakeFiles/tdat_core.dir/archive.cpp.o.d"
  "CMakeFiles/tdat_core.dir/delay_report.cpp.o"
  "CMakeFiles/tdat_core.dir/delay_report.cpp.o.d"
  "CMakeFiles/tdat_core.dir/detectors.cpp.o"
  "CMakeFiles/tdat_core.dir/detectors.cpp.o.d"
  "CMakeFiles/tdat_core.dir/export.cpp.o"
  "CMakeFiles/tdat_core.dir/export.cpp.o.d"
  "CMakeFiles/tdat_core.dir/locate.cpp.o"
  "CMakeFiles/tdat_core.dir/locate.cpp.o.d"
  "CMakeFiles/tdat_core.dir/options.cpp.o"
  "CMakeFiles/tdat_core.dir/options.cpp.o.d"
  "CMakeFiles/tdat_core.dir/pcap2bgp.cpp.o"
  "CMakeFiles/tdat_core.dir/pcap2bgp.cpp.o.d"
  "CMakeFiles/tdat_core.dir/series_builder.cpp.o"
  "CMakeFiles/tdat_core.dir/series_builder.cpp.o.d"
  "CMakeFiles/tdat_core.dir/timeseq.cpp.o"
  "CMakeFiles/tdat_core.dir/timeseq.cpp.o.d"
  "libtdat_core.a"
  "libtdat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
