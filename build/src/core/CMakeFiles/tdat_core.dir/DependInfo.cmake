
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ack_shift.cpp" "src/core/CMakeFiles/tdat_core.dir/ack_shift.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/ack_shift.cpp.o.d"
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/tdat_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/archive.cpp" "src/core/CMakeFiles/tdat_core.dir/archive.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/archive.cpp.o.d"
  "/root/repo/src/core/delay_report.cpp" "src/core/CMakeFiles/tdat_core.dir/delay_report.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/delay_report.cpp.o.d"
  "/root/repo/src/core/detectors.cpp" "src/core/CMakeFiles/tdat_core.dir/detectors.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/detectors.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/tdat_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/export.cpp.o.d"
  "/root/repo/src/core/locate.cpp" "src/core/CMakeFiles/tdat_core.dir/locate.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/locate.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/core/CMakeFiles/tdat_core.dir/options.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/options.cpp.o.d"
  "/root/repo/src/core/pcap2bgp.cpp" "src/core/CMakeFiles/tdat_core.dir/pcap2bgp.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/pcap2bgp.cpp.o.d"
  "/root/repo/src/core/series_builder.cpp" "src/core/CMakeFiles/tdat_core.dir/series_builder.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/series_builder.cpp.o.d"
  "/root/repo/src/core/timeseq.cpp" "src/core/CMakeFiles/tdat_core.dir/timeseq.cpp.o" "gcc" "src/core/CMakeFiles/tdat_core.dir/timeseq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/tdat_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/tdat_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/tdat_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/timerange/CMakeFiles/tdat_timerange.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
