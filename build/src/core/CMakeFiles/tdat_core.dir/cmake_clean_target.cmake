file(REMOVE_RECURSE
  "libtdat_core.a"
)
