file(REMOVE_RECURSE
  "libtdat_bgp.a"
)
