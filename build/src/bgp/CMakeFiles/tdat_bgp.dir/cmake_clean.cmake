file(REMOVE_RECURSE
  "CMakeFiles/tdat_bgp.dir/mct.cpp.o"
  "CMakeFiles/tdat_bgp.dir/mct.cpp.o.d"
  "CMakeFiles/tdat_bgp.dir/message.cpp.o"
  "CMakeFiles/tdat_bgp.dir/message.cpp.o.d"
  "CMakeFiles/tdat_bgp.dir/mrt.cpp.o"
  "CMakeFiles/tdat_bgp.dir/mrt.cpp.o.d"
  "CMakeFiles/tdat_bgp.dir/msg_stream.cpp.o"
  "CMakeFiles/tdat_bgp.dir/msg_stream.cpp.o.d"
  "CMakeFiles/tdat_bgp.dir/table_gen.cpp.o"
  "CMakeFiles/tdat_bgp.dir/table_gen.cpp.o.d"
  "libtdat_bgp.a"
  "libtdat_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
