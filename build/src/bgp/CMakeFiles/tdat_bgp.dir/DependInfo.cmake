
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/mct.cpp" "src/bgp/CMakeFiles/tdat_bgp.dir/mct.cpp.o" "gcc" "src/bgp/CMakeFiles/tdat_bgp.dir/mct.cpp.o.d"
  "/root/repo/src/bgp/message.cpp" "src/bgp/CMakeFiles/tdat_bgp.dir/message.cpp.o" "gcc" "src/bgp/CMakeFiles/tdat_bgp.dir/message.cpp.o.d"
  "/root/repo/src/bgp/mrt.cpp" "src/bgp/CMakeFiles/tdat_bgp.dir/mrt.cpp.o" "gcc" "src/bgp/CMakeFiles/tdat_bgp.dir/mrt.cpp.o.d"
  "/root/repo/src/bgp/msg_stream.cpp" "src/bgp/CMakeFiles/tdat_bgp.dir/msg_stream.cpp.o" "gcc" "src/bgp/CMakeFiles/tdat_bgp.dir/msg_stream.cpp.o.d"
  "/root/repo/src/bgp/table_gen.cpp" "src/bgp/CMakeFiles/tdat_bgp.dir/table_gen.cpp.o" "gcc" "src/bgp/CMakeFiles/tdat_bgp.dir/table_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
