# Empty dependencies file for tdat_bgp.
# This may be replaced when dependencies are built.
