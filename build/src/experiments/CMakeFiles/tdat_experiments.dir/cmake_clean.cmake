file(REMOVE_RECURSE
  "CMakeFiles/tdat_experiments.dir/fleet.cpp.o"
  "CMakeFiles/tdat_experiments.dir/fleet.cpp.o.d"
  "libtdat_experiments.a"
  "libtdat_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
