file(REMOVE_RECURSE
  "libtdat_experiments.a"
)
