# Empty dependencies file for tdat_experiments.
# This may be replaced when dependencies are built.
