file(REMOVE_RECURSE
  "libtdat_pcap.a"
)
