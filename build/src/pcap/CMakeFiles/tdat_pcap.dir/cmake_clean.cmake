file(REMOVE_RECURSE
  "CMakeFiles/tdat_pcap.dir/checksum.cpp.o"
  "CMakeFiles/tdat_pcap.dir/checksum.cpp.o.d"
  "CMakeFiles/tdat_pcap.dir/decode.cpp.o"
  "CMakeFiles/tdat_pcap.dir/decode.cpp.o.d"
  "CMakeFiles/tdat_pcap.dir/encode.cpp.o"
  "CMakeFiles/tdat_pcap.dir/encode.cpp.o.d"
  "CMakeFiles/tdat_pcap.dir/pcap_file.cpp.o"
  "CMakeFiles/tdat_pcap.dir/pcap_file.cpp.o.d"
  "libtdat_pcap.a"
  "libtdat_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
