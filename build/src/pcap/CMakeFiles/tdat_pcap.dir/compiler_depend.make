# Empty compiler generated dependencies file for tdat_pcap.
# This may be replaced when dependencies are built.
