# Empty dependencies file for tdat.
# This may be replaced when dependencies are built.
