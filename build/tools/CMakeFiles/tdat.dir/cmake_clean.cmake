file(REMOVE_RECURSE
  "CMakeFiles/tdat.dir/tdat_cli.cpp.o"
  "CMakeFiles/tdat.dir/tdat_cli.cpp.o.d"
  "tdat"
  "tdat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
