# Empty compiler generated dependencies file for diagnose_pcap.
# This may be replaced when dependencies are built.
