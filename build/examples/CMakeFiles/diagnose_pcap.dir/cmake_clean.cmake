file(REMOVE_RECURSE
  "CMakeFiles/diagnose_pcap.dir/diagnose_pcap.cpp.o"
  "CMakeFiles/diagnose_pcap.dir/diagnose_pcap.cpp.o.d"
  "diagnose_pcap"
  "diagnose_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
