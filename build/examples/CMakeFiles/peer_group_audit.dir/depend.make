# Empty dependencies file for peer_group_audit.
# This may be replaced when dependencies are built.
