file(REMOVE_RECURSE
  "CMakeFiles/peer_group_audit.dir/peer_group_audit.cpp.o"
  "CMakeFiles/peer_group_audit.dir/peer_group_audit.cpp.o.d"
  "peer_group_audit"
  "peer_group_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_group_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
