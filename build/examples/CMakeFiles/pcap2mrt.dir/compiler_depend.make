# Empty compiler generated dependencies file for pcap2mrt.
# This may be replaced when dependencies are built.
