file(REMOVE_RECURSE
  "CMakeFiles/pcap2mrt.dir/pcap2mrt.cpp.o"
  "CMakeFiles/pcap2mrt.dir/pcap2mrt.cpp.o.d"
  "pcap2mrt"
  "pcap2mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap2mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
