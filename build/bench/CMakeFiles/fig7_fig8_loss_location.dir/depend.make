# Empty dependencies file for fig7_fig8_loss_location.
# This may be replaced when dependencies are built.
