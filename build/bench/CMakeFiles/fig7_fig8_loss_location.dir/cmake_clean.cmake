file(REMOVE_RECURSE
  "CMakeFiles/fig7_fig8_loss_location.dir/fig7_fig8_loss_location.cpp.o"
  "CMakeFiles/fig7_fig8_loss_location.dir/fig7_fig8_loss_location.cpp.o.d"
  "fig7_fig8_loss_location"
  "fig7_fig8_loss_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fig8_loss_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
