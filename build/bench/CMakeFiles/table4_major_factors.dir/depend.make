# Empty dependencies file for table4_major_factors.
# This may be replaced when dependencies are built.
