file(REMOVE_RECURSE
  "CMakeFiles/table4_major_factors.dir/table4_major_factors.cpp.o"
  "CMakeFiles/table4_major_factors.dir/table4_major_factors.cpp.o.d"
  "table4_major_factors"
  "table4_major_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_major_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
