
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_major_factors.cpp" "bench/CMakeFiles/table4_major_factors.dir/table4_major_factors.cpp.o" "gcc" "bench/CMakeFiles/table4_major_factors.dir/table4_major_factors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/tdat_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tdat_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/timerange/CMakeFiles/tdat_timerange.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/tdat_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/tdat_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
