file(REMOVE_RECURSE
  "CMakeFiles/micro_rangeset.dir/micro_rangeset.cpp.o"
  "CMakeFiles/micro_rangeset.dir/micro_rangeset.cpp.o.d"
  "micro_rangeset"
  "micro_rangeset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rangeset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
