# Empty compiler generated dependencies file for micro_rangeset.
# This may be replaced when dependencies are built.
