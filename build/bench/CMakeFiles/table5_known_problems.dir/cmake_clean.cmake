file(REMOVE_RECURSE
  "CMakeFiles/table5_known_problems.dir/table5_known_problems.cpp.o"
  "CMakeFiles/table5_known_problems.dir/table5_known_problems.cpp.o.d"
  "table5_known_problems"
  "table5_known_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_known_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
