# Empty dependencies file for table5_known_problems.
# This may be replaced when dependencies are built.
