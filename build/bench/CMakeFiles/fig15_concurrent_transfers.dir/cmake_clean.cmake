file(REMOVE_RECURSE
  "CMakeFiles/fig15_concurrent_transfers.dir/fig15_concurrent_transfers.cpp.o"
  "CMakeFiles/fig15_concurrent_transfers.dir/fig15_concurrent_transfers.cpp.o.d"
  "fig15_concurrent_transfers"
  "fig15_concurrent_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_concurrent_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
