# Empty dependencies file for fig15_concurrent_transfers.
# This may be replaced when dependencies are built.
