# Empty dependencies file for fig5_timer_gaps.
# This may be replaced when dependencies are built.
