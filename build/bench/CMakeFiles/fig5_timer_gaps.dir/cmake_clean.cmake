file(REMOVE_RECURSE
  "CMakeFiles/fig5_timer_gaps.dir/fig5_timer_gaps.cpp.o"
  "CMakeFiles/fig5_timer_gaps.dir/fig5_timer_gaps.cpp.o.d"
  "fig5_timer_gaps"
  "fig5_timer_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_timer_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
