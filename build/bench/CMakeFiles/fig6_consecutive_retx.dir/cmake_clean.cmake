file(REMOVE_RECURSE
  "CMakeFiles/fig6_consecutive_retx.dir/fig6_consecutive_retx.cpp.o"
  "CMakeFiles/fig6_consecutive_retx.dir/fig6_consecutive_retx.cpp.o.d"
  "fig6_consecutive_retx"
  "fig6_consecutive_retx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_consecutive_retx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
