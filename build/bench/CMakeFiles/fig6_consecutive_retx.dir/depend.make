# Empty dependencies file for fig6_consecutive_retx.
# This may be replaced when dependencies are built.
