file(REMOVE_RECURSE
  "CMakeFiles/table2_transport_problems.dir/table2_transport_problems.cpp.o"
  "CMakeFiles/table2_transport_problems.dir/table2_transport_problems.cpp.o.d"
  "table2_transport_problems"
  "table2_transport_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_transport_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
