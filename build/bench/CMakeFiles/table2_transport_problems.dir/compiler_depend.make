# Empty compiler generated dependencies file for table2_transport_problems.
# This may be replaced when dependencies are built.
