file(REMOVE_RECURSE
  "CMakeFiles/fig11_event_series.dir/fig11_event_series.cpp.o"
  "CMakeFiles/fig11_event_series.dir/fig11_event_series.cpp.o.d"
  "fig11_event_series"
  "fig11_event_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_event_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
