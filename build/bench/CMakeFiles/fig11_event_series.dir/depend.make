# Empty dependencies file for fig11_event_series.
# This may be replaced when dependencies are built.
