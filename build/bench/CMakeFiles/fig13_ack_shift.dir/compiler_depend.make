# Empty compiler generated dependencies file for fig13_ack_shift.
# This may be replaced when dependencies are built.
