file(REMOVE_RECURSE
  "CMakeFiles/fig13_ack_shift.dir/fig13_ack_shift.cpp.o"
  "CMakeFiles/fig13_ack_shift.dir/fig13_ack_shift.cpp.o.d"
  "fig13_ack_shift"
  "fig13_ack_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ack_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
