# Empty dependencies file for fig17_timer_inference.
# This may be replaced when dependencies are built.
