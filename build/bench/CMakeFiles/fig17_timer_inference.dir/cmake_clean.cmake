file(REMOVE_RECURSE
  "CMakeFiles/fig17_timer_inference.dir/fig17_timer_inference.cpp.o"
  "CMakeFiles/fig17_timer_inference.dir/fig17_timer_inference.cpp.o.d"
  "fig17_timer_inference"
  "fig17_timer_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_timer_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
