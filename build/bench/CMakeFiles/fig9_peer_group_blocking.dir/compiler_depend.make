# Empty compiler generated dependencies file for fig9_peer_group_blocking.
# This may be replaced when dependencies are built.
