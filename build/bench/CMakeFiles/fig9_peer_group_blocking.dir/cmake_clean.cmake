file(REMOVE_RECURSE
  "CMakeFiles/fig9_peer_group_blocking.dir/fig9_peer_group_blocking.cpp.o"
  "CMakeFiles/fig9_peer_group_blocking.dir/fig9_peer_group_blocking.cpp.o.d"
  "fig9_peer_group_blocking"
  "fig9_peer_group_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_peer_group_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
