# Empty compiler generated dependencies file for fig16_duration_by_factor.
# This may be replaced when dependencies are built.
