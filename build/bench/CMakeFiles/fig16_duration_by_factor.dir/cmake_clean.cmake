file(REMOVE_RECURSE
  "CMakeFiles/fig16_duration_by_factor.dir/fig16_duration_by_factor.cpp.o"
  "CMakeFiles/fig16_duration_by_factor.dir/fig16_duration_by_factor.cpp.o.d"
  "fig16_duration_by_factor"
  "fig16_duration_by_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_duration_by_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
