# Empty compiler generated dependencies file for fig4_stretch_ratio.
# This may be replaced when dependencies are built.
