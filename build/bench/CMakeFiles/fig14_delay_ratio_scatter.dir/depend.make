# Empty dependencies file for fig14_delay_ratio_scatter.
# This may be replaced when dependencies are built.
