file(REMOVE_RECURSE
  "CMakeFiles/fig14_delay_ratio_scatter.dir/fig14_delay_ratio_scatter.cpp.o"
  "CMakeFiles/fig14_delay_ratio_scatter.dir/fig14_delay_ratio_scatter.cpp.o.d"
  "fig14_delay_ratio_scatter"
  "fig14_delay_ratio_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_delay_ratio_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
