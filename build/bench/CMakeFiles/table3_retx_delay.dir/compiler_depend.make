# Empty compiler generated dependencies file for table3_retx_delay.
# This may be replaced when dependencies are built.
