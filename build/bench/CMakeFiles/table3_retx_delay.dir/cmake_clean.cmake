file(REMOVE_RECURSE
  "CMakeFiles/table3_retx_delay.dir/table3_retx_delay.cpp.o"
  "CMakeFiles/table3_retx_delay.dir/table3_retx_delay.cpp.o.d"
  "table3_retx_delay"
  "table3_retx_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_retx_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
