# Empty compiler generated dependencies file for ablation_ack_shift.
# This may be replaced when dependencies are built.
