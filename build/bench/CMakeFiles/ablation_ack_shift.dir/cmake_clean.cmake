file(REMOVE_RECURSE
  "CMakeFiles/ablation_ack_shift.dir/ablation_ack_shift.cpp.o"
  "CMakeFiles/ablation_ack_shift.dir/ablation_ack_shift.cpp.o.d"
  "ablation_ack_shift"
  "ablation_ack_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ack_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
