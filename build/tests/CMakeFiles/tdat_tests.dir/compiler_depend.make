# Empty compiler generated dependencies file for tdat_tests.
# This may be replaced when dependencies are built.
