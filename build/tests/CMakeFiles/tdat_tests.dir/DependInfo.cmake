
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analyzer_properties_test.cpp" "tests/CMakeFiles/tdat_tests.dir/analyzer_properties_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/analyzer_properties_test.cpp.o.d"
  "/root/repo/tests/bgp_mct_test.cpp" "tests/CMakeFiles/tdat_tests.dir/bgp_mct_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/bgp_mct_test.cpp.o.d"
  "/root/repo/tests/bgp_message_test.cpp" "tests/CMakeFiles/tdat_tests.dir/bgp_message_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/bgp_message_test.cpp.o.d"
  "/root/repo/tests/bgp_stream_mrt_test.cpp" "tests/CMakeFiles/tdat_tests.dir/bgp_stream_mrt_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/bgp_stream_mrt_test.cpp.o.d"
  "/root/repo/tests/core_ack_shift_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_ack_shift_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_ack_shift_test.cpp.o.d"
  "/root/repo/tests/core_analyzer_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_analyzer_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_analyzer_test.cpp.o.d"
  "/root/repo/tests/core_archive_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_archive_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_archive_test.cpp.o.d"
  "/root/repo/tests/core_capture_voids_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_capture_voids_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_capture_voids_test.cpp.o.d"
  "/root/repo/tests/core_delay_report_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_delay_report_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_delay_report_test.cpp.o.d"
  "/root/repo/tests/core_detectors_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_detectors_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_detectors_test.cpp.o.d"
  "/root/repo/tests/core_export_timeseq_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_export_timeseq_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_export_timeseq_test.cpp.o.d"
  "/root/repo/tests/core_locate_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_locate_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_locate_test.cpp.o.d"
  "/root/repo/tests/core_pcap2bgp_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_pcap2bgp_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_pcap2bgp_test.cpp.o.d"
  "/root/repo/tests/core_series_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_series_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_series_test.cpp.o.d"
  "/root/repo/tests/core_update_burst_test.cpp" "tests/CMakeFiles/tdat_tests.dir/core_update_burst_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/core_update_burst_test.cpp.o.d"
  "/root/repo/tests/event_series_test.cpp" "tests/CMakeFiles/tdat_tests.dir/event_series_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/event_series_test.cpp.o.d"
  "/root/repo/tests/experiments_fleet_test.cpp" "tests/CMakeFiles/tdat_tests.dir/experiments_fleet_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/experiments_fleet_test.cpp.o.d"
  "/root/repo/tests/pcap_test.cpp" "tests/CMakeFiles/tdat_tests.dir/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/pcap_test.cpp.o.d"
  "/root/repo/tests/range_set_test.cpp" "tests/CMakeFiles/tdat_tests.dir/range_set_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/range_set_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/tdat_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/sim_core_test.cpp" "tests/CMakeFiles/tdat_tests.dir/sim_core_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/sim_core_test.cpp.o.d"
  "/root/repo/tests/sim_endpoint_behavior_test.cpp" "tests/CMakeFiles/tdat_tests.dir/sim_endpoint_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/sim_endpoint_behavior_test.cpp.o.d"
  "/root/repo/tests/sim_tcp_test.cpp" "tests/CMakeFiles/tdat_tests.dir/sim_tcp_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/sim_tcp_test.cpp.o.d"
  "/root/repo/tests/sim_world_test.cpp" "tests/CMakeFiles/tdat_tests.dir/sim_world_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/sim_world_test.cpp.o.d"
  "/root/repo/tests/tcp_classify_test.cpp" "tests/CMakeFiles/tdat_tests.dir/tcp_classify_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/tcp_classify_test.cpp.o.d"
  "/root/repo/tests/tcp_connection_test.cpp" "tests/CMakeFiles/tdat_tests.dir/tcp_connection_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/tcp_connection_test.cpp.o.d"
  "/root/repo/tests/tcp_flights_test.cpp" "tests/CMakeFiles/tdat_tests.dir/tcp_flights_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/tcp_flights_test.cpp.o.d"
  "/root/repo/tests/tcp_reassembler_test.cpp" "tests/CMakeFiles/tdat_tests.dir/tcp_reassembler_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/tcp_reassembler_test.cpp.o.d"
  "/root/repo/tests/tcp_seq_test.cpp" "tests/CMakeFiles/tdat_tests.dir/tcp_seq_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/tcp_seq_test.cpp.o.d"
  "/root/repo/tests/tcp_timestamps_test.cpp" "tests/CMakeFiles/tdat_tests.dir/tcp_timestamps_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/tcp_timestamps_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/tdat_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/tdat_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/tdat_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/tdat_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tdat_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/tdat_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/timerange/CMakeFiles/tdat_timerange.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
