// Fallback driver so the fuzz targets build and run without libFuzzer
// (clang's -fsanitize=fuzzer is unavailable under GCC, which is what the
// local toolchain ships). Speaks enough of the libFuzzer command line that
// CI scripts work unchanged against either binary:
//
//   fuzz_pcap [-max_total_time=N] [-rss_limit_mb=M] [corpus_dir|file]...
//
// Every file in every corpus argument is replayed through
// LLVMFuzzerTestOneInput; with a time budget the driver keeps going,
// replaying deterministic byte-level mutations of the corpus until the
// budget is spent. Unknown -flags are ignored, like libFuzzer does for the
// flags it recognises but we don't implement.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using Clock = std::chrono::steady_clock;

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.insert(out.end(), buf, buf + got);
  }
  std::fclose(f);
  return true;
}

void collect_inputs(const std::string& path, std::vector<std::string>& out) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "standalone driver: cannot stat %s\n", path.c_str());
    return;
  }
  if (!S_ISDIR(st.st_mode)) {
    out.push_back(path);
    return;
  }
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    collect_inputs(path + "/" + entry->d_name, out);
  }
  ::closedir(dir);
}

// xorshift64: a deterministic mutation schedule independent of libc rand.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

void mutate(std::vector<std::uint8_t>& data, std::uint64_t& rng) {
  if (data.empty()) {
    data.push_back(static_cast<std::uint8_t>(next_rand(rng)));
    return;
  }
  switch (next_rand(rng) % 4) {
    case 0:  // flip a bit
      data[next_rand(rng) % data.size()] ^=
          static_cast<std::uint8_t>(1u << (next_rand(rng) % 8));
      break;
    case 1:  // overwrite a byte
      data[next_rand(rng) % data.size()] =
          static_cast<std::uint8_t>(next_rand(rng));
      break;
    case 2:  // truncate
      data.resize(next_rand(rng) % data.size());
      break;
    default:  // duplicate a tail slice onto the end
      data.insert(data.end(), data.begin() + static_cast<std::ptrdiff_t>(
                                  next_rand(rng) % data.size()),
                  data.end());
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long max_total_time = 0;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
      max_total_time = std::atol(arg + 16);
    } else if (arg[0] == '-') {
      // Unimplemented libFuzzer flag; ignore.
    } else {
      collect_inputs(arg, inputs);
    }
  }

  std::vector<std::uint8_t> data;
  std::size_t executions = 0;
  for (const std::string& path : inputs) {
    if (!read_file(path, data)) {
      std::fprintf(stderr, "standalone driver: cannot read %s\n", path.c_str());
      continue;
    }
    LLVMFuzzerTestOneInput(data.data(), data.size());
    ++executions;
  }

  if (max_total_time > 0 && !inputs.empty()) {
    const auto deadline = Clock::now() + std::chrono::seconds(max_total_time);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    std::size_t at = 0;
    while (Clock::now() < deadline) {
      if (!read_file(inputs[at], data)) break;
      at = (at + 1) % inputs.size();
      const std::size_t rounds = 1 + next_rand(rng) % 8;
      for (std::size_t r = 0; r < rounds; ++r) {
        mutate(data, rng);
        LLVMFuzzerTestOneInput(data.data(), data.size());
        ++executions;
      }
    }
  }

  std::printf("standalone driver: %zu executions over %zu corpus inputs\n",
              executions, inputs.size());
  return 0;
}
