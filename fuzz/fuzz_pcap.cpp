// Fuzz target: pcap ingest. Runs every input through the three readers —
// the in-memory parser (drop-tail semantics), the strict stream (historical
// behaviour), and the recovering stream with a small error budget and a tiny
// chunk size so records straddle refill boundaries. The harness asserts
// nothing about the parse outcome; it exists so the sanitizers can assert
// memory safety on arbitrary bytes.
#include <cstddef>
#include <cstdint>
#include <span>

#include "pcap/pcap_file.hpp"
#include "pcap/pcap_stream.hpp"
#include "util/log.hpp"

namespace {

const bool kQuiet = [] {
  tdat::set_log_level("off");
  return true;
}();

void drain(tdat::Result<tdat::PcapStream> stream) {
  if (!stream.ok()) return;
  tdat::StreamRecord rec;
  while (stream.value().next(rec)) {
    // The view must cover exactly what the header promised.
    if (rec.data.size() > 0) {
      volatile std::uint8_t sink = rec.data[rec.data.size() - 1];
      (void)sink;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)kQuiet;
  const std::span<const std::uint8_t> image(data, size);

  if (auto parsed = tdat::parse_pcap(image); parsed.ok()) {
    (void)tdat::decode_pcap(parsed.value(), /*verify_checksums=*/true);
  }

  drain(tdat::PcapStream::from_memory(image,
                                      tdat::IngestPolicy::strict_mode(), 4096));

  tdat::IngestPolicy recover;
  recover.max_errors = 64;
  drain(tdat::PcapStream::from_memory(image, recover, 4096));
  return 0;
}
