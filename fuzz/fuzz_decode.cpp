// Fuzz target: frame decoding (Ethernet II -> IPv4 -> TCP). Exercises both
// the checksum-verifying and the permissive paths, and both the copying and
// the zero-copy (caller-backed) forms, off the input's size parity so the
// corpus explores all four.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pcap/decode.hpp"
#include "util/log.hpp"

namespace {

const bool kQuiet = [] {
  tdat::set_log_level("off");
  return true;
}();

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)kQuiet;
  const std::span<const std::uint8_t> frame(data, size);
  const bool verify = (size & 1) != 0;

  // Copying form: the packet must survive the caller's bytes going away.
  auto copied = tdat::decode_frame(0, 0, frame, verify);
  if (copied && copied->has_payload()) {
    volatile std::uint8_t sink = copied->payload()[0];
    (void)sink;
  }

  // Zero-copy form: the packet views `backing`'s bytes directly.
  auto backing = std::make_shared<std::vector<std::uint8_t>>(frame.begin(),
                                                             frame.end());
  const std::span<const std::uint8_t> view(*backing);
  auto viewed = tdat::decode_frame(1, 1, view, verify, backing);
  if (viewed && viewed->has_payload()) {
    volatile std::uint8_t sink = viewed->payload()[viewed->payload().size() - 1];
    (void)sink;
  }
  return 0;
}
