// Fuzz target: .tdckpt checkpoint decoding. parse_checkpoint guards the
// crash-recovery path of `tdat watch`, so the exact bytes a torn write, a
// bit flip, or a hostile edit can leave on disk must parse to either a valid
// checkpoint or a structured error — never a crash, hang, or overread. The
// harness also re-encodes every accepted parse and asserts the round trip is
// stable (encode(parse(x)) parses to the same value), which pins the codec
// against asymmetries between writer and reader.
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/checkpoint.hpp"
#include "util/log.hpp"

namespace {

const bool kQuiet = [] {
  tdat::set_log_level("off");
  return true;
}();

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)kQuiet;
  const std::span<const std::uint8_t> image(data, size);
  auto parsed = tdat::parse_checkpoint(image);
  if (!parsed.ok()) return 0;

  const std::vector<std::uint8_t> reencoded =
      tdat::encode_checkpoint(parsed.value());
  auto reparsed = tdat::parse_checkpoint(reencoded);
  if (!reparsed.ok()) __builtin_trap();  // codec must round-trip its output
  if (!(reparsed.value() == parsed.value())) __builtin_trap();
  return 0;
}
