// Seed-corpus generator for the fuzz targets. Everything is deterministic
// (fixed seeds), so regenerating produces byte-identical seeds; the output
// is committed under fuzz/corpus/ and CI replays it, it is not rebuilt per
// run. Seeds are deliberately small — they are starting points for mutation,
// not representative captures.
//
//   make_corpus [output_dir]     (default: fuzz/corpus)
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "bgp/message.hpp"
#include "bgp/table_gen.hpp"
#include "core/checkpoint.hpp"
#include "pcap/encode.hpp"
#include "pcap/fault_injector.hpp"
#include "pcap/pcap_file.hpp"
#include "sim/bgp_apps.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace {

bool ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  std::fprintf(stderr, "make_corpus: cannot create %s\n", path.c_str());
  return false;
}

bool write_seed(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "make_corpus: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (ok) std::printf("  %s (%zu bytes)\n", path.c_str(), data.size());
  return ok;
}

// A miniature but structurally real capture: one simulated BGP session over
// real TCP, a few dozen UPDATEs.
std::vector<std::uint8_t> tiny_capture() {
  tdat::SimWorld world(12345);
  tdat::SessionSpec spec;
  tdat::Rng rng(54321);
  tdat::TableGenConfig tg;
  tg.prefix_count = 120;
  const auto session = world.add_session(
      spec, tdat::serialize_updates(tdat::generate_table(tg, rng)));
  world.start_session(session, 0);
  world.run_until(30 * tdat::kMicrosPerSec);
  return tdat::serialize_pcap(world.take_trace());
}

bool emit_pcap_seeds(const std::string& dir) {
  const std::vector<std::uint8_t> clean = tiny_capture();
  bool ok = write_seed(dir + "/clean.pcap", clean);

  // One faulted variant per structural damage class the resync path handles;
  // bit-level damage is what mutation is good at, so one seed suffices.
  for (const tdat::FaultMode mode :
       {tdat::FaultMode::kTruncateRecord, tdat::FaultMode::kZeroInclLen,
        tdat::FaultMode::kOverlongInclLen, tdat::FaultMode::kGarbageSplice,
        tdat::FaultMode::kBitFlip}) {
    std::vector<std::uint8_t> image = clean;
    tdat::FaultPlan plan;
    plan.mode = mode;
    plan.seed = 7;
    const auto report = tdat::inject_faults(image, plan);
    if (report.faults_applied == 0) {
      std::fprintf(stderr, "make_corpus: %s applied no faults\n",
                   tdat::to_string(mode));
      return false;
    }
    ok = write_seed(dir + "/" + tdat::to_string(mode) + ".pcap", image) && ok;
  }

  // Degenerate but well-formed: a global header with no records.
  tdat::PcapFile empty;
  ok = write_seed(dir + "/empty.pcap", tdat::serialize_pcap(empty)) && ok;
  return ok;
}

bool emit_decode_seeds(const std::string& dir) {
  tdat::TcpSegmentSpec syn;
  syn.src_ip = 0x0a000101;
  syn.dst_ip = 0x0a090909;
  syn.src_port = 20000;
  syn.dst_port = 179;
  syn.seq = 1000;
  syn.flags.syn = true;
  syn.window = 65535;
  syn.mss = 1460;
  syn.window_scale = 7;
  syn.ts_val = 1;
  bool ok = write_seed(dir + "/syn.bin", tdat::encode_tcp_frame(syn));

  tdat::TcpSegmentSpec data = syn;
  data.flags.syn = false;
  data.flags.ack = true;
  data.mss.reset();
  data.window_scale.reset();
  data.seq = 1001;
  data.ack = 2000;
  std::vector<std::uint8_t> payload(101, 0xab);
  data.payload = payload;
  ok = write_seed(dir + "/data.bin", tdat::encode_tcp_frame(data)) && ok;

  tdat::TcpSegmentSpec ack = data;
  ack.payload = {};
  ack.ts_val.reset();
  ok = write_seed(dir + "/ack.bin", tdat::encode_tcp_frame(ack)) && ok;
  return ok;
}

bool emit_bgp_seeds(const std::string& dir) {
  // First seed byte = feed chunk size the harness uses; the rest is stream.
  const auto with_chunk = [](std::uint8_t chunk,
                             std::vector<std::uint8_t> stream) {
    stream.insert(stream.begin(), chunk);
    return stream;
  };

  std::vector<std::uint8_t> session;
  tdat::BgpOpen open;
  open.my_as = 65001;
  open.bgp_id = 0x0a000101;
  const auto append = [&session](const tdat::BgpMessage& msg) {
    const auto wire = tdat::serialize_message(msg);
    session.insert(session.end(), wire.begin(), wire.end());
  };
  append(tdat::BgpMessage{open});
  append(tdat::BgpMessage{tdat::BgpKeepAlive{}});
  tdat::Rng rng(99);
  tdat::TableGenConfig tg;
  tg.prefix_count = 40;
  for (const tdat::BgpUpdate& update : tdat::generate_table(tg, rng)) {
    append(tdat::BgpMessage{update});
  }
  append(tdat::BgpMessage{tdat::BgpNotification{6, 2, {0x00}}});

  // Whole-session seed fed in large chunks, the same bytes fed byte-at-a-time
  // (chunk byte 0 = chunk size 1), and a framing-loss seed with garbage
  // between two valid messages so the marker hunt has something to find.
  bool ok = write_seed(dir + "/session.bin", with_chunk(63, session));
  ok = write_seed(dir + "/session-tiny-chunks.bin", with_chunk(0, session)) && ok;

  std::vector<std::uint8_t> torn(session.begin(), session.begin() + 19 + 5);
  torn.insert(torn.end(), {0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0x00});
  torn.insert(torn.end(), session.begin(), session.end());
  ok = write_seed(dir + "/torn.bin", with_chunk(16, torn)) && ok;
  return ok;
}

bool emit_checkpoint_seeds(const std::string& dir) {
  // A populated checkpoint exercising every payload field: identity, resume
  // state with damage tallies, config, counters, and a mix of live and
  // retired connections with single- and multi-run offset lists.
  tdat::LiveCheckpoint ckpt;
  ckpt.capture = {0x801, 0x1234567, 1 << 20, 1024, 0xdeadbeef};
  ckpt.resume_offset = 524312;
  ckpt.records_seen = 4021;
  ckpt.stream_last_ts = 29 * tdat::kMicrosPerSec;
  ckpt.diag.truncated = 2;
  ckpt.diag.resynced = 1;
  ckpt.diag.skipped_bytes = 37;
  ckpt.next_index = 4021;
  ckpt.now_ts = ckpt.stream_last_ts;
  ckpt.config.location = 1;
  ckpt.config.verify_checksums = true;
  ckpt.config.window = 5 * tdat::kMicrosPerSec;
  ckpt.config.idle_gc = 30 * tdat::kMicrosPerSec;
  ckpt.epochs = 17;
  ckpt.records = 4021;
  ckpt.packets = 3977;
  ckpt.connections_total = 3;
  ckpt.connections_gc = 1;
  ckpt.packets_evicted = 120;
  ckpt.conns.push_back({false, {{24, 900, 0}, {40000, 1200, 1800}}});
  ckpt.conns.push_back({true, {{90000, 400, 3000}}});
  ckpt.conns.push_back({false, {{120000, 621, 3400}}});
  bool ok = write_seed(dir + "/full.tdckpt", tdat::encode_checkpoint(ckpt));

  // Degenerate but valid: a cold checkpoint with no connections.
  tdat::LiveCheckpoint empty;
  ok = write_seed(dir + "/empty.tdckpt", tdat::encode_checkpoint(empty)) && ok;

  // Structural damage classes the parser must reject: a truncation that cuts
  // the payload, a bit flip that breaks the CRC, and trailing garbage.
  std::vector<std::uint8_t> image = tdat::encode_checkpoint(ckpt);
  std::vector<std::uint8_t> torn(image.begin(),
                                 image.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         image.size() / 2));
  ok = write_seed(dir + "/torn.tdckpt", torn) && ok;
  std::vector<std::uint8_t> flipped = image;
  flipped[flipped.size() / 3] ^= 0x40;
  ok = write_seed(dir + "/bit-flip.tdckpt", flipped) && ok;
  std::vector<std::uint8_t> trailing = image;
  trailing.insert(trailing.end(), {0xde, 0xad, 0xbe, 0xef});
  ok = write_seed(dir + "/trailing.tdckpt", trailing) && ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "fuzz/corpus";
  if (!ensure_dir(out) || !ensure_dir(out + "/pcap") ||
      !ensure_dir(out + "/decode") || !ensure_dir(out + "/bgp") ||
      !ensure_dir(out + "/checkpoint")) {
    return 1;
  }
  const bool ok = emit_pcap_seeds(out + "/pcap") &&
                  emit_decode_seeds(out + "/decode") &&
                  emit_bgp_seeds(out + "/bgp") &&
                  emit_checkpoint_seeds(out + "/checkpoint");
  return ok ? 0 : 1;
}
