// Fuzz target: BGP message framing over a reconstructed byte stream. The
// first input byte picks the chunk size the remaining bytes are fed in, so
// the corpus explores messages straddling feed boundaries, the stash path,
// and marker-hunt resynchronisation after malformed lengths.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bgp/msg_stream.hpp"
#include "util/log.hpp"

namespace {

const bool kQuiet = [] {
  tdat::set_log_level("off");
  return true;
}();

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)kQuiet;
  if (size == 0) return 0;
  const std::size_t chunk = static_cast<std::size_t>(data[0]) + 1;  // 1..256
  const std::span<const std::uint8_t> stream(data + 1, size - 1);

  tdat::BgpMessageStream framer;
  std::vector<tdat::TimedBgpMessage> out;
  for (std::size_t at = 0; at < stream.size(); at += chunk) {
    const std::size_t len = std::min(chunk, stream.size() - at);
    framer.feed_into(stream.subspan(at, len), static_cast<tdat::Micros>(at),
                     out);
    out.clear();
  }

  // Same bytes in one shot must account for every byte the same way the
  // chunked feed did (messages + skipped + buffered tail).
  tdat::BgpMessageStream whole;
  whole.feed_into(stream, 0, out);
  out.clear();
  return 0;
}
